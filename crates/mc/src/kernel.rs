//! The versioned Monte-Carlo trial-kernel contract.
//!
//! A *trial kernel* is the complete recipe that turns a per-trial seed
//! into recorded statistics: how uniforms become normals, how slowdown
//! factors are evaluated, and in what order partial statistics merge.
//! Each kernel version is a **determinism contract**: for a fixed spec
//! and version, result bytes are invariant across worker counts, shard
//! splits, resume splices, and tracing. A faster kernel is therefore a
//! *new version* — never a silent change to an existing one — and two
//! versions agree only statistically (same distributions within Monte-
//! Carlo error), not byte-for-byte.
//!
//! The kernel version is deliberately **excluded from scenario identity
//! hashes**, exactly like the execution backend: identity pins *what is
//! simulated* (and the per-trial seed derivation, which all kernels
//! share), while the kernel pins *how the arithmetic runs*. Results land
//! in distinct journal entries per kernel, but a spec's seeds never move
//! when the kernel changes.

/// Which trial-kernel contract a Monte-Carlo runner executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TrialKernel {
    /// The original scalar kernel: one Box–Muller normal at a time
    /// (cosine half only), exact `powf` slowdown factors, sequential
    /// statistics accumulation. Every result byte produced before
    /// kernels were versioned is a V1 byte.
    #[default]
    V1,
    /// The batch kernel: structure-of-arrays sampling with pair-
    /// producing Box–Muller for die-level normals, one-uniform
    /// inverse-CDF normals per gate, frozen polynomial
    /// `exp(α·ln(od/(od−ΔVth)))` slowdown factors, and statistics
    /// folded through [`V2_LANES`] lanes in a fixed merge order.
    V2,
}

impl TrialKernel {
    /// Stable lowercase name (`"v1"` / `"v2"`), used in specs, spans and
    /// reports.
    pub fn name(self) -> &'static str {
        match self {
            TrialKernel::V1 => "v1",
            TrialKernel::V2 => "v2",
        }
    }
}

/// Number of statistics lanes in the v2 kernel's fixed merge tree.
///
/// v2 accumulates trial `t` into lane `t % V2_LANES` and folds the lanes
/// in ascending lane order at the end of every block. The lane count and
/// fold order are **part of the v2 contract**: floating-point merging is
/// order-sensitive, so freezing the tree is what makes v2 byte-identical
/// to itself at any worker count, shard split, or resume point (all of
/// which preserve block boundaries).
pub const V2_LANES: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_default() {
        assert_eq!(TrialKernel::default(), TrialKernel::V1);
        assert_eq!(TrialKernel::V1.name(), "v1");
        assert_eq!(TrialKernel::V2.name(), "v2");
    }
}
