//! Property tests: merging partial results must equal single-pass
//! accumulation — the algebra behind the sweep engine's streaming
//! aggregation.

use proptest::prelude::*;
use vardelay_mc::{McResult, PipelineBlockStats};
use vardelay_stats::RunningStats;

fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-50.0..450.0_f64, 2..120)
}

proptest! {
    #[test]
    fn mc_result_merge_equals_single_pass(xs in samples(), split in 1usize..100) {
        let cut = split.min(xs.len() - 1);
        let mut left = McResult::new(xs[..cut].to_vec());
        let right = McResult::new(xs[cut..].to_vec());
        left.merge(&right);
        let full = McResult::new(xs.clone());

        prop_assert_eq!(left.samples(), full.samples(), "samples concatenate in order");
        prop_assert_eq!(left.stats().count(), full.stats().count());
        prop_assert!((left.mean() - full.mean()).abs() < 1e-9);
        prop_assert!((left.sd() - full.sd()).abs() < 1e-9);
        prop_assert_eq!(left.stats().min(), full.stats().min());
        prop_assert_eq!(left.stats().max(), full.stats().max());
        // Quantiles and yields see the same sample multiset.
        let t = xs[0];
        prop_assert_eq!(left.yield_at(t).value, full.yield_at(t).value);
    }

    #[test]
    fn running_stats_merge_equals_single_pass(xs in samples(), split in 1usize..100) {
        let cut = split.min(xs.len() - 1);
        let mut a: RunningStats = xs[..cut].iter().copied().collect();
        let b: RunningStats = xs[cut..].iter().copied().collect();
        a.merge(&b);
        let full: RunningStats = xs.iter().copied().collect();

        prop_assert_eq!(a.count(), full.count());
        prop_assert!((a.mean() - full.mean()).abs() < 1e-9);
        prop_assert!((a.sample_variance() - full.sample_variance()).abs() < 1e-6);
        prop_assert!((a.skewness() - full.skewness()).abs() < 1e-6);
        prop_assert!((a.excess_kurtosis() - full.excess_kurtosis()).abs() < 1e-6);
    }

    #[test]
    fn block_stats_merge_equals_single_pass(
        trials in proptest::collection::vec(
            (10.0..200.0_f64, 10.0..200.0_f64, 10.0..200.0_f64), 2..80
        ),
        split in 1usize..60,
        target in 50.0..180.0_f64
    ) {
        let cut = split.min(trials.len() - 1);
        let targets = [target, target + 20.0];
        let record_all = |stats: &mut PipelineBlockStats, rows: &[(f64, f64, f64)]| {
            for &(a, b, c) in rows {
                let maxd = a.max(b).max(c);
                stats.record(&[a, b, c], maxd);
            }
        };

        let mut left = PipelineBlockStats::new(3, &targets);
        record_all(&mut left, &trials[..cut]);
        let mut right = PipelineBlockStats::new(3, &targets);
        record_all(&mut right, &trials[cut..]);
        left.merge(&right);

        let mut full = PipelineBlockStats::new(3, &targets);
        record_all(&mut full, &trials);

        prop_assert_eq!(left.trials(), full.trials());
        prop_assert!((left.pipeline().mean() - full.pipeline().mean()).abs() < 1e-9);
        prop_assert!((left.pipeline().sample_sd() - full.pipeline().sample_sd()).abs() < 1e-9);
        for i in 0..2 {
            prop_assert_eq!(left.yield_estimate(i).value, full.yield_estimate(i).value);
        }
        for (l, f) in left.stage_stats().iter().zip(full.stage_stats()) {
            prop_assert!((l.mean() - f.mean()).abs() < 1e-9);
            prop_assert_eq!(l.min(), f.min());
            prop_assert_eq!(l.max(), f.max());
        }
    }
}
