//! Criterion bench: sweep-engine throughput vs worker count.
//!
//! One fixed 8-scenario Monte-Carlo sweep, executed at 1/2/4/8 workers.
//! On a multi-core host the blocks of every scenario spread across the
//! pool and throughput scales with cores; on a single-CPU host the
//! curve is flat and measures the pool's scheduling overhead instead.
//! Either way the results are bit-identical at every point — the bench
//! asserts it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vardelay_engine::{
    run_sweep, BackendSpec, GridSpec, KernelSpec, LatchSpec, Sweep, SweepOptions, TrialPlanSpec,
    VariationSpec,
};

fn bench_sweep(c: &mut Criterion) {
    let sweep = Sweep {
        name: "bench".to_owned(),
        seed: 3,
        scenarios: vec![],
        grid: Some(GridSpec {
            stage_counts: vec![4, 6],
            logic_depths: vec![6, 10],
            sizes: vec![1.0],
            variations: vec![
                VariationSpec::RandomOnly { sigma_mv: 35.0 },
                VariationSpec::Combined {
                    inter_mv: 20.0,
                    random_mv: 35.0,
                    systematic_mv: 15.0,
                },
            ],
            latch: LatchSpec::TgMsff70nm,
            trials: 2_000,
            trial_plan: TrialPlanSpec::default(),
            yield_targets: vec![],
            auto_target_sigmas: vec![1.2],
            backend: BackendSpec::Pipeline,
            kernel: KernelSpec::default(),
            histogram_bins: 0,
        }),
    };

    let baseline = run_sweep(&sweep, &SweepOptions::sequential())
        .expect("valid spec")
        .to_json();

    let mut group = c.benchmark_group("engine/sweep_8x2000");
    group.sample_size(10);
    for &workers in &[1usize, 2, 4, 8] {
        let result = run_sweep(&sweep, &SweepOptions { workers }).expect("valid spec");
        assert_eq!(
            result.to_json(),
            baseline,
            "determinism at {workers} workers"
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| b.iter(|| run_sweep(black_box(&sweep), &SweepOptions { workers })),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
