//! Criterion bench: per-campaign cost of the Fig. 9 sizing loop on the
//! two in-loop yield backends.
//!
//! One ensure-yield run on a small 4-stage chain pipeline (the golden
//! test's Table-II-style shape), timed end to end through
//! `run_campaign` — frontier resolution, individual baseline, global
//! flow, and Monte-Carlo verification included:
//!
//! * `campaign/analytic` — the paper flow: closed-form Clark/SSTA yield
//!   inside the loop.
//! * `campaign/netlist` — gate-level Monte-Carlo yield inside the loop
//!   (1024 trials per evaluation on the prepared zero-allocation path);
//!   the delta over `analytic` is the in-loop measurement cost.
//!
//! Determinism is asserted before timing: 1-worker and 4-worker
//! campaign results must be byte-identical, or the numbers would not be
//! comparable run to run.
//!
//! Run: `cargo bench -p vardelay-bench --bench optimize_campaign`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vardelay_engine::optimize::{OptimizationCampaign, OptimizeSpec, YieldBackendSpec};
use vardelay_engine::{run_campaign, LatchSpec, PipelineSpec, SweepOptions, VariationSpec};
use vardelay_opt::{OptimizationGoal, TargetDelayPolicy};

fn campaign(backend: YieldBackendSpec) -> OptimizationCampaign {
    OptimizationCampaign {
        name: format!("bench-{}", backend.keyword()),
        seed: 0xBE7C,
        runs: vec![OptimizeSpec {
            label: format!("chains ensure 80% ({})", backend.keyword()),
            pipeline: PipelineSpec::InverterStages {
                depths: vec![30, 29, 29, 29],
                size: 1.0,
                latch: LatchSpec::TgMsff70nm,
            },
            variation: VariationSpec::RandomOnly { sigma_mv: 35.0 },
            yield_target: 0.80,
            target_delay: TargetDelayPolicy::FrontierQuantile { q: 0.86, refine: 3 },
            goal: OptimizationGoal::EnsureYield,
            rounds: 3,
            yield_backend: backend,
            eval_trials: 1_024,
            verify_trials: 4_096,
        }],
        grid: None,
    }
}

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    for backend in [YieldBackendSpec::Analytic, YieldBackendSpec::Netlist] {
        let spec = campaign(backend);
        // The numbers are only comparable because the workload is a
        // pure function of the spec: assert it.
        let a = run_campaign(&spec, &SweepOptions::sequential()).unwrap();
        let b = run_campaign(&spec, &SweepOptions::sequential().with_workers(4)).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "worker count must not matter");
        assert_eq!(a.runs.len(), 1);

        group.bench_with_input(
            BenchmarkId::from_parameter(backend.keyword()),
            &spec,
            |bch, spec| bch.iter(|| run_campaign(black_box(spec), &SweepOptions::sequential())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
