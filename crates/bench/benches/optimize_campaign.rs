//! Criterion bench: per-campaign cost of the Fig. 9 sizing loop on the
//! two in-loop yield backends.
//!
//! One ensure-yield run on a small 4-stage chain pipeline (the golden
//! test's Table-II-style shape), timed end to end through
//! `run_campaign` — frontier resolution, individual baseline, global
//! flow, and Monte-Carlo verification included:
//!
//! * `campaign/analytic` — the paper flow: closed-form Clark/SSTA yield
//!   inside the loop.
//! * `campaign/netlist` — gate-level Monte-Carlo yield inside the loop
//!   (1024 trials per evaluation on the prepared zero-allocation path);
//!   the delta over `analytic` is the in-loop measurement cost.
//!
//! Determinism is asserted before timing: 1-worker and 4-worker
//! campaign results must be byte-identical, or the numbers would not be
//! comparable run to run.
//!
//! A second group, `flow`, isolates the **sizing flow proper** (frontier
//! resolution + the Fig. 9 global loop, no Monte-Carlo verification) and
//! times it on the old full-pass kernel vs the incremental kernel side
//! by side — asserted bit-identical first. The distinction matters for
//! reading the campaign numbers: a campaign's wall-clock also contains
//! the final MC verification and the report's criticality sampling,
//! whose trial-by-trial arithmetic is pinned by the byte-identity
//! contract and therefore does not speed up with the kernel.
//!
//! Run: `cargo bench -p vardelay-bench --bench optimize_campaign`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vardelay_circuit::generators::inverter_chain;
use vardelay_circuit::{CellLibrary, LatchParams, StagedPipeline};
use vardelay_engine::optimize::{OptimizationCampaign, OptimizeSpec, YieldBackendSpec};
use vardelay_engine::{
    run_campaign, KernelSpec, LatchSpec, PipelineSpec, SweepOptions, TrialPlanSpec, VariationSpec,
};
use vardelay_opt::{
    GlobalPipelineOptimizer, OptimizationGoal, SizingConfig, StatisticalSizer, TargetDelayPolicy,
};
use vardelay_process::VariationConfig;
use vardelay_ssta::SstaEngine;

fn campaign(backend: YieldBackendSpec) -> OptimizationCampaign {
    OptimizationCampaign {
        name: format!("bench-{}", backend.keyword()),
        seed: 0xBE7C,
        runs: vec![OptimizeSpec {
            label: format!("chains ensure 80% ({})", backend.keyword()),
            pipeline: PipelineSpec::InverterStages {
                depths: vec![30, 29, 29, 29],
                size: 1.0,
                latch: LatchSpec::TgMsff70nm,
            },
            variation: VariationSpec::RandomOnly { sigma_mv: 35.0 },
            yield_target: 0.80,
            target_delay: TargetDelayPolicy::FrontierQuantile { q: 0.86, refine: 3 },
            goal: OptimizationGoal::EnsureYield,
            rounds: 3,
            yield_backend: backend,
            kernel: KernelSpec::default(),
            eval_trials: 1_024,
            verify_trials: 4_096,
            verify_plan: TrialPlanSpec::default(),
        }],
        grid: None,
    }
}

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    for backend in [YieldBackendSpec::Analytic, YieldBackendSpec::Netlist] {
        let spec = campaign(backend);
        // The numbers are only comparable because the workload is a
        // pure function of the spec: assert it.
        let a = run_campaign(&spec, &SweepOptions::sequential()).unwrap();
        let b = run_campaign(&spec, &SweepOptions::sequential().with_workers(4)).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "worker count must not matter");
        assert_eq!(a.runs.len(), 1);

        group.bench_with_input(
            BenchmarkId::from_parameter(backend.keyword()),
            &spec,
            |bch, spec| bch.iter(|| run_campaign(black_box(spec), &SweepOptions::sequential())),
        );
    }
    group.finish();
}

fn bench_flow(c: &mut Criterion) {
    let engine = SstaEngine::new(
        CellLibrary::default(),
        VariationConfig::random_only(35.0),
        None,
    );
    let incremental = StatisticalSizer::new(engine, SizingConfig::default());
    let full = incremental.clone().with_full_pass_kernel();
    let pipeline = StagedPipeline::new(
        "bench",
        vec![
            inverter_chain(30, 1.0),
            inverter_chain(29, 1.0),
            inverter_chain(29, 1.0),
            inverter_chain(29, 1.0),
        ],
        LatchParams::tg_msff_70nm(),
    );
    let policy = TargetDelayPolicy::FrontierQuantile { q: 0.86, refine: 3 };
    let run = |sizer: &StatisticalSizer| {
        let opt = GlobalPipelineOptimizer::new(sizer.clone()).with_rounds(3);
        let resolved = policy.resolve(&opt, &pipeline, 0.80);
        opt.optimize(
            &resolved.baseline,
            resolved.target_ps,
            0.80,
            OptimizationGoal::EnsureYield,
        )
    };

    // Kernel equivalence, asserted before timing.
    let (pa, ra) = run(&incremental);
    let (pb, rb) = run(&full);
    assert_eq!(pa.stages(), pb.stages(), "kernels diverged");
    assert_eq!(ra.pipeline_yield_after, rb.pipeline_yield_after);

    let mut group = c.benchmark_group("flow");
    group.sample_size(10);
    group.bench_function("incremental", |bch| {
        bch.iter(|| black_box(run(&incremental)))
    });
    group.bench_function("full_pass", |bch| bch.iter(|| black_box(run(&full))));
    group.finish();
}

criterion_group!(benches, bench_campaign, bench_flow);
criterion_main!(benches);
