//! Criterion bench: Monte-Carlo engine throughput — quantifies the speedup
//! the analytical model buys over simulation (the paper's motivation for
//! an analytical yield model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vardelay_circuit::{CellLibrary, LatchParams, StagedPipeline};
use vardelay_mc::{McConfig, PipelineMc};
use vardelay_process::VariationConfig;

fn bench_pipeline_mc(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc/pipeline_5x8");
    group.sample_size(10);
    let mc = PipelineMc::new(
        CellLibrary::default(),
        VariationConfig::combined(20.0, 35.0, 15.0),
        None,
    );
    let pipe = StagedPipeline::inverter_grid(5, 8, 1.0, LatchParams::tg_msff_70nm());
    for &trials in &[500usize, 2_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(trials),
            &trials,
            |b, &trials| {
                b.iter(|| {
                    mc.run(
                        black_box(&pipe),
                        &McConfig {
                            trials,
                            seed: 7,
                            threads: 1,
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_mc);
criterion_main!(benches);
