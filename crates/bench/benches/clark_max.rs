//! Criterion bench: Clark's max operator — the pipeline model's hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vardelay_stats::{max_of, max_pair, CorrelationMatrix, Normal};

fn bench_max_pair(c: &mut Criterion) {
    let a = Normal::new(200.0, 5.0).unwrap();
    let b = Normal::new(202.0, 6.0).unwrap();
    c.bench_function("clark/max_pair", |bench| {
        bench.iter(|| max_pair(black_box(a), black_box(b), black_box(0.3)))
    });
}

fn bench_max_of(c: &mut Criterion) {
    let mut group = c.benchmark_group("clark/max_of");
    for &n in &[4usize, 16, 64] {
        let stages: Vec<Normal> = (0..n)
            .map(|i| Normal::new(200.0 + i as f64 * 0.5, 5.0).unwrap())
            .collect();
        let corr = CorrelationMatrix::uniform(n, 0.3).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| max_of(black_box(&stages), black_box(&corr)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_max_pair, bench_max_of);
criterion_main!(benches);
