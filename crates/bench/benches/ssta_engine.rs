//! Criterion bench: block-based SSTA over benchmark netlists.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vardelay_circuit::generators::{inverter_chain, iscas};
use vardelay_circuit::{CellLibrary, LatchParams, StagedPipeline};
use vardelay_process::VariationConfig;
use vardelay_ssta::SstaEngine;

fn engine(var: VariationConfig) -> SstaEngine {
    SstaEngine::new(CellLibrary::default(), var, None)
}

fn bench_stage_delay(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssta/stage_delay");
    let eng = engine(VariationConfig::combined(20.0, 35.0, 15.0));
    for (name, netlist) in [
        ("chain40", inverter_chain(40, 1.0)),
        ("c432", iscas::c432()),
        ("c3540", iscas::c3540()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &netlist, |b, n| {
            b.iter(|| eng.stage_delay(black_box(n), 0))
        });
    }
    group.finish();
}

fn bench_pipeline_analysis(c: &mut Criterion) {
    let eng = engine(VariationConfig::combined(20.0, 35.0, 15.0));
    let pipe = StagedPipeline::inverter_grid(12, 10, 1.0, LatchParams::tg_msff_70nm());
    c.bench_function("ssta/analyze_pipeline_12x10", |b| {
        b.iter(|| eng.analyze_pipeline(black_box(&pipe)))
    });
}

criterion_group!(benches, bench_stage_delay, bench_pipeline_analysis);
criterion_main!(benches);
