//! Criterion bench: statistical gate sizing of a stage, old vs new.
//!
//! `size_stage` is the Fig. 9 flow's inner loop and the dominant cost of
//! optimization campaigns' sizing phase. Two kernels are timed side by
//! side on the same 200-gate fixture:
//!
//! * `sizing/incremental` — the production path: persistent
//!   [`vardelay_ssta::StageTimer`] (dirty-cone nominal timing with
//!   journaled speculate/rollback) plus [`vardelay_ssta::StageSsta`]
//!   (dirty-cone canonical SSTA) drive candidate scoring and the
//!   corrective loop.
//! * `sizing/full_pass` — the pre-incremental reference kernel: a fresh
//!   O(n) arrival-time pass per candidate and a from-scratch SSTA per
//!   corrective iteration.
//!
//! The two are asserted **bit-identical** before timing (same sized
//! netlist, same move count, same moments) — the incremental kernel is
//! a pure speedup, which is what lets campaign JSON stay byte-stable
//! across the refactor. A `retime` group times the raw kernel: one
//! resize+retime probe, full pass vs dirty cone.
//!
//! Run: `cargo bench -p vardelay-bench --bench sizing`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vardelay_circuit::generators::{random_logic, RandomLogicConfig};
use vardelay_circuit::CellLibrary;
use vardelay_opt::sizing::{SizingConfig, StatisticalSizer};
use vardelay_process::VariationConfig;
use vardelay_ssta::sta::arrival_times;
use vardelay_ssta::{SstaEngine, StageTimer};

fn bench_stage() -> vardelay_circuit::Netlist {
    random_logic(&RandomLogicConfig {
        name: "bench_stage".into(),
        inputs: 24,
        gates: 200,
        depth: 14,
        outputs: 12,
        seed: 77,
    })
}

fn bench_size_stage(c: &mut Criterion) {
    let engine = SstaEngine::new(
        CellLibrary::default(),
        VariationConfig::random_only(35.0),
        None,
    );
    let incremental = StatisticalSizer::new(engine.clone(), SizingConfig::default());
    let full = incremental.clone().with_full_pass_kernel();
    let stage = bench_stage();
    let d0 = engine.stage_delay(&stage, 0);
    let target = d0.mean() * 0.92;

    // The determinism contract, asserted before any timing: the two
    // kernels must agree bit for bit, or the numbers would not be
    // comparable (and campaign bytes would have drifted).
    let a = incremental.size_stage(&stage, 0, target, 0.9);
    let b = full.size_stage(&stage, 0, target, 0.9);
    assert_eq!(a.netlist, b.netlist, "kernels diverged");
    assert_eq!(a.moves, b.moves);
    assert_eq!(a.stat_delay_ps, b.stat_delay_ps);

    let mut group = c.benchmark_group("sizing");
    group.sample_size(10);
    group.bench_function("incremental", |bch| {
        bch.iter(|| incremental.size_stage(black_box(&stage), 0, black_box(target), 0.9))
    });
    group.bench_function("full_pass", |bch| {
        bch.iter(|| full.size_stage(black_box(&stage), 0, black_box(target), 0.9))
    });
    group.finish();
}

fn bench_retime_kernel(c: &mut Criterion) {
    let lib = CellLibrary::default();
    let stage = bench_stage();
    let gi = stage.gate_count() / 2;

    let mut group = c.benchmark_group("retime");
    // One probe = apply a size, re-time, undo — the candidate-scoring
    // primitive the sizer runs thousands of times per stage.
    group.bench_function("full_pass", |bch| {
        let mut work = stage.clone();
        bch.iter(|| {
            let s = work.gates()[gi].size;
            work.set_gate_size(gi, s * 1.15);
            let at = arrival_times(&work, &lib, 3.0, None);
            work.set_gate_size(gi, s);
            black_box(at[at.len() - 1])
        })
    });
    let mut timer = StageTimer::new(stage.clone(), &lib, 3.0);
    group.bench_function("incremental", |bch| {
        bch.iter(|| {
            let s = timer.size_of(gi);
            timer.try_size(gi, s * 1.15);
            let d = timer.delay();
            timer.rollback();
            black_box(d)
        })
    });
    group.finish();

    // Sanity: all those speculate/rollback probes must leave the benched
    // timer bit-identical to a from-scratch pass.
    assert_eq!(
        timer.arrivals(),
        &arrival_times(&stage, &lib, 3.0, None)[..]
    );
}

criterion_group!(benches, bench_size_stage, bench_retime_kernel);
criterion_main!(benches);
