//! Criterion bench: statistical gate sizing of a stage.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vardelay_circuit::generators::{random_logic, RandomLogicConfig};
use vardelay_circuit::CellLibrary;
use vardelay_opt::sizing::{SizingConfig, StatisticalSizer};
use vardelay_process::VariationConfig;
use vardelay_ssta::SstaEngine;

fn bench_size_stage(c: &mut Criterion) {
    let engine = SstaEngine::new(
        CellLibrary::default(),
        VariationConfig::random_only(35.0),
        None,
    );
    let sizer = StatisticalSizer::new(engine.clone(), SizingConfig::default());
    let stage = random_logic(&RandomLogicConfig {
        name: "bench_stage".into(),
        inputs: 24,
        gates: 200,
        depth: 14,
        outputs: 12,
        seed: 77,
    });
    let d0 = engine.stage_delay(&stage, 0);
    let target = d0.mean() * 0.92;
    let mut group = c.benchmark_group("sizing");
    group.sample_size(10);
    group.bench_function("size_stage_200g", |b| {
        b.iter(|| sizer.size_stage(black_box(&stage), 0, black_box(target), 0.9))
    });
    group.finish();
}

criterion_group!(benches, bench_size_stage);
criterion_main!(benches);
