//! Criterion bench: per-trial cost of the gate-level Monte-Carlo hot
//! path before and after the workspace refactor.
//!
//! Two layers of comparison on the paper's Table-1 chain pipeline
//! (5 stages × depth 8, combined variation — the worst case for the
//! allocator, since every trial draws die + region values and times 40
//! gates):
//!
//! * `trial/*` — the runners head to head on identical seeds:
//!   `alloc` is `PipelineMc::run_block` (fresh vectors every trial),
//!   `workspace` is `PreparedPipelineMc::run_block` (scratch buffers
//!   reused, loads and nominal delays precomputed). Identical numerics
//!   — the bench asserts the statistics match bit for bit — so the
//!   entire delta is allocation + redundant delay-model work.
//! * `sweep/*` — the same scenario through `run_sweep` at 1/2/4/8
//!   workers on the `pipeline` (allocating) vs `netlist` (workspace)
//!   backend.
//!
//! Run: `cargo bench -p vardelay-bench --bench netlist_hot_path`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vardelay_circuit::{CellLibrary, LatchParams, StagedPipeline};
use vardelay_engine::{
    run_sweep, BackendSpec, CircuitSpec, KernelSpec, LatchSpec, PipelineSpec, Scenario, Sweep,
    SweepOptions, TrialPlanSpec, VariationSpec,
};
use vardelay_mc::{PipelineBlockStats, PipelineMc, PreparedPipelineMc};
use vardelay_process::VariationConfig;

fn seed_of(t: u64) -> u64 {
    t.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x7AB1)
}

fn bench_trial(c: &mut Criterion) {
    let pipeline = StagedPipeline::inverter_grid(5, 8, 1.0, LatchParams::tg_msff_70nm());
    let mc = PipelineMc::new(
        CellLibrary::default(),
        VariationConfig::combined(20.0, 35.0, 15.0),
        None,
    );
    let prepared = PreparedPipelineMc::new(&mc, &pipeline);

    // Identical numerics first: the speedup must be a pure optimization.
    let mut a = PipelineBlockStats::new(5, &[]);
    mc.run_block(&pipeline, 0..256, seed_of, &mut a);
    let mut b = PipelineBlockStats::new(5, &[]);
    let mut ws = prepared.workspace();
    prepared.run_block(&mut ws, 0..256, seed_of, &mut b);
    assert_eq!(a, b, "workspace path must be bit-identical");

    let mut group = c.benchmark_group("hot_path/trial_block_256");
    group.sample_size(20);
    group.bench_function("alloc (PipelineMc)", |bch| {
        bch.iter(|| {
            let mut stats = PipelineBlockStats::new(5, &[]);
            mc.run_block(black_box(&pipeline), 0..256, seed_of, &mut stats);
            stats
        })
    });
    group.bench_function("workspace (PreparedPipelineMc)", |bch| {
        bch.iter(|| {
            let mut stats = PipelineBlockStats::new(5, &[]);
            prepared.run_block(&mut ws, 0..256, seed_of, &mut stats);
            stats
        })
    });
    group.finish();
    assert!(
        ws.reuses() >= 256,
        "bench loop must have reused the workspace"
    );
}

fn chain_scenario(backend: BackendSpec) -> Scenario {
    Scenario {
        kernel: KernelSpec::default(),
        label: format!("5x8 {}", backend.keyword()),
        pipeline: PipelineSpec::Circuits {
            stages: vec![
                CircuitSpec::Chain {
                    depth: 8,
                    size: 1.0,
                };
                5
            ],
            latch: LatchSpec::TgMsff70nm,
        },
        variation: VariationSpec::Combined {
            inter_mv: 20.0,
            random_mv: 35.0,
            systematic_mv: 15.0,
        },
        trials: 4_000,
        trial_plan: TrialPlanSpec::default(),
        yield_targets: vec![],
        auto_target_sigmas: vec![1.2],
        backend,
        histogram_bins: 0,
    }
}

fn bench_sweep_backends(c: &mut Criterion) {
    for backend in [BackendSpec::Pipeline, BackendSpec::Netlist] {
        let sweep = Sweep {
            name: "hot-path".to_owned(),
            seed: 41,
            scenarios: vec![chain_scenario(backend)],
            grid: None,
        };
        let baseline = run_sweep(&sweep, &SweepOptions::sequential())
            .expect("valid spec")
            .to_json();
        let name = format!("hot_path/sweep_{}", backend.keyword());
        let mut group = c.benchmark_group(&name);
        group.sample_size(10);
        for &workers in &[1usize, 2, 4, 8] {
            let run = run_sweep(&sweep, &SweepOptions { workers }).expect("valid spec");
            assert_eq!(run.to_json(), baseline, "determinism at {workers} workers");
            group.bench_with_input(
                BenchmarkId::from_parameter(workers),
                &workers,
                |bch, &workers| {
                    bch.iter(|| run_sweep(black_box(&sweep), &SweepOptions { workers }))
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_trial, bench_sweep_backends);
criterion_main!(benches);
