//! Shared experiment fixtures: the calibrated setups every binary uses.

use vardelay_circuit::{CellLibrary, LatchParams, StagedPipeline};
use vardelay_core::{Pipeline, StageDelay};
use vardelay_mc::{McConfig, PipelineMc, PipelineMcResult};
use vardelay_process::{Technology, VariationConfig};
use vardelay_ssta::{PipelineTiming, SstaEngine};
use vardelay_stats::Normal;

/// The paper's three verification scenarios (§2.4 / Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Only random intra-die variation — independent stage delays.
    IntraRandomOnly,
    /// Only inter-die variation — perfectly correlated stage delays.
    InterOnly,
    /// Inter + intra (random + systematic) — partially correlated.
    Combined,
}

impl Scenario {
    /// The calibrated variation configuration for this scenario.
    pub fn variation(self) -> VariationConfig {
        match self {
            Scenario::IntraRandomOnly => VariationConfig::random_only(35.0),
            Scenario::InterOnly => VariationConfig::inter_only(40.0),
            Scenario::Combined => VariationConfig::combined(20.0, 35.0, 15.0),
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::IntraRandomOnly => "random intra-die only",
            Scenario::InterOnly => "inter-die only",
            Scenario::Combined => "inter + intra (random + systematic)",
        }
    }
}

/// The standard cell library (BPTM-70nm-like).
pub fn library() -> CellLibrary {
    CellLibrary::new(Technology::bptm70())
}

/// An SSTA engine for a scenario.
pub fn engine(scenario: Scenario) -> SstaEngine {
    SstaEngine::new(library(), scenario.variation(), None)
}

/// A pipeline Monte-Carlo runner for a scenario.
pub fn pipeline_mc(scenario: Scenario) -> PipelineMc {
    PipelineMc::new(library(), scenario.variation(), None)
}

/// An `ns × nl` inverter-chain pipeline with the paper's flip-flops.
pub fn inverter_pipeline(ns: usize, nl: usize) -> StagedPipeline {
    StagedPipeline::inverter_grid(ns, nl, 1.0, LatchParams::tg_msff_70nm())
}

/// The Tables II/III pipeline as a campaign spec: the four synthetic
/// ISCAS85 profiles, biggest first (the same stages and order as
/// [`vardelay_circuit::generators::iscas::table2_stages`]), behind the
/// paper's TG-MSFF — shared by the `table2`/`table3` campaign drivers.
pub fn iscas_pipeline_spec() -> vardelay_engine::PipelineSpec {
    vardelay_engine::PipelineSpec::Circuits {
        stages: ["c3540", "c2670", "c1908", "c432"]
            .iter()
            .map(|name| vardelay_engine::CircuitSpec::Iscas {
                name: (*name).to_owned(),
            })
            .collect(),
        latch: vardelay_engine::LatchSpec::TgMsff70nm,
    }
}

/// Converts an SSTA pipeline analysis into the core pipeline model.
pub fn to_core_pipeline(timing: &PipelineTiming) -> Pipeline {
    let stages: Vec<StageDelay> = timing
        .stage_delays
        .iter()
        .map(|n| StageDelay::from_normal(*n))
        .collect();
    Pipeline::new(stages, timing.correlation.clone())
        .expect("SSTA timing dimensions are consistent")
}

/// Analytic (SSTA + Clark) pipeline delay for a staged pipeline.
pub fn analytic_delay(scenario: Scenario, pipeline: &StagedPipeline) -> Normal {
    to_core_pipeline(&engine(scenario).analyze_pipeline(pipeline)).delay_distribution()
}

/// Monte-Carlo pipeline delay with the default experiment budget.
pub fn mc_delay(
    scenario: Scenario,
    pipeline: &StagedPipeline,
    trials: usize,
    seed: u64,
) -> PipelineMcResult {
    pipeline_mc(scenario).run(
        pipeline,
        &McConfig {
            trials,
            seed,
            threads: 4,
        },
    )
}

/// A side-by-side comparison row: analytic vs Monte-Carlo.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Configuration label (e.g. "5x8").
    pub label: String,
    /// Target delay used for the yield column (ps).
    pub target_ps: f64,
    /// Monte-Carlo mean (ps).
    pub mc_mean: f64,
    /// Monte-Carlo sd (ps).
    pub mc_sd: f64,
    /// Monte-Carlo yield (0..1).
    pub mc_yield: f64,
    /// Analytical mean (ps).
    pub model_mean: f64,
    /// Analytical sd (ps).
    pub model_sd: f64,
    /// Analytical yield (0..1).
    pub model_yield: f64,
}

impl ComparisonRow {
    /// Relative mean error in percent.
    pub fn mean_error_pct(&self) -> f64 {
        100.0 * (self.model_mean - self.mc_mean).abs() / self.mc_mean
    }

    /// Relative sd error in percent.
    pub fn sd_error_pct(&self) -> f64 {
        100.0 * (self.model_sd - self.mc_sd).abs() / self.mc_sd
    }
}

/// Runs one Table-I style comparison for a pipeline configuration,
/// following the paper's §2.4 methodology: the per-stage `(μᵢ, σᵢ)` are
/// *measured* from the Monte-Carlo (the paper uses SPICE MC), then fed
/// into the analytical model together with the SSTA-derived stage
/// correlations — so the comparison isolates the Clark-model error, not
/// the stage-characterization error.
pub fn compare(
    scenario: Scenario,
    pipeline: &StagedPipeline,
    target_ps: f64,
    trials: usize,
    seed: u64,
) -> ComparisonRow {
    let mc = mc_delay(scenario, pipeline, trials, seed);
    let correlation = engine(scenario).analyze_pipeline(pipeline).correlation;
    let stages: Vec<StageDelay> = mc
        .stage_stats
        .iter()
        .map(|s| {
            StageDelay::from_moments(s.mean(), s.sample_sd()).expect("MC stage moments are finite")
        })
        .collect();
    let model = Pipeline::new(stages, correlation).expect("dimensions match");
    let analytic = model.delay_distribution();
    ComparisonRow {
        label: pipeline.name().to_owned(),
        target_ps,
        mc_mean: mc.pipeline.mean(),
        mc_sd: mc.pipeline.sd(),
        mc_yield: mc.pipeline.yield_at(target_ps).value,
        model_mean: analytic.mean(),
        model_sd: analytic.sd(),
        model_yield: model.yield_at(target_ps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iscas_spec_matches_table2_stages() {
        use vardelay_circuit::generators::iscas;
        let built = iscas_pipeline_spec().build("iscas4").unwrap();
        let want = iscas::table2_stages();
        assert_eq!(built.stage_count(), want.len());
        for (b, w) in built.stages().iter().zip(&want) {
            assert_eq!(b.gate_count(), w.gate_count());
        }
    }

    #[test]
    fn scenarios_map_to_expected_components() {
        assert!(!Scenario::IntraRandomOnly.variation().has_inter());
        assert!(!Scenario::InterOnly.variation().has_random());
        assert!(Scenario::Combined.variation().has_systematic());
    }

    #[test]
    fn comparison_row_errors_match_paper_bounds() {
        // Small 4x6 pipeline: the model should track MC within the paper's
        // reported error envelope (mean < ~1%, sd < ~10% incl. MC noise).
        let p = inverter_pipeline(4, 6);
        let row = compare(Scenario::IntraRandomOnly, &p, 230.0, 8_000, 42);
        assert!(
            row.mean_error_pct() < 1.0,
            "mean err {}",
            row.mean_error_pct()
        );
        assert!(row.sd_error_pct() < 12.0, "sd err {}", row.sd_error_pct());
        assert!((row.mc_yield - row.model_yield).abs() < 0.05);
    }

    #[test]
    fn analytic_delay_exceeds_slowest_stage() {
        let p = inverter_pipeline(5, 8);
        let timing = engine(Scenario::IntraRandomOnly).analyze_pipeline(&p);
        let d = analytic_delay(Scenario::IntraRandomOnly, &p);
        let slowest = timing
            .stage_delays
            .iter()
            .map(Normal::mean)
            .fold(0.0, f64::max);
        assert!(d.mean() >= slowest);
    }
}
