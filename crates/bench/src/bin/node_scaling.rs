//! Cross-node extrapolation (beyond the paper): how the pipeline-yield
//! problem worsens as technology scales from 100 nm through 70 nm to
//! 45 nm-class nodes.
//!
//! The same 5×8 inverter-chain pipeline is analyzed at three technology
//! presets whose random-mismatch coefficients follow the Pelgrom trend
//! (smaller devices, more σVth). The target is set at each node's own
//! μ+1.3σ point so the comparison isolates the variability growth.
//!
//! Run: `cargo run --release -p vardelay-bench --bin node_scaling`

use vardelay_bench::render::{pct, TextTable};
use vardelay_bench::to_core_pipeline;
use vardelay_circuit::{CellLibrary, LatchParams, StagedPipeline};
use vardelay_process::{Technology, VariationConfig};
use vardelay_ssta::SstaEngine;

fn main() {
    println!("Node scaling — the sub-100nm yield problem getting worse (extension)\n");
    let pipe = StagedPipeline::inverter_grid(5, 8, 1.0, LatchParams::tg_msff_70nm());

    let mut t = TextTable::new([
        "node",
        "sigmaVth rand (mV)",
        "pipeline mu (ps)",
        "sigma (ps)",
        "sigma/mu %",
        "yield @ mu+2% %",
    ]);
    for tech in [
        Technology::generic100(),
        Technology::bptm70(),
        Technology::generic45(),
    ] {
        let rand_mv = tech.sigma_vth_rand_min_v() * 1e3;
        let var = VariationConfig::combined(20.0, rand_mv, 0.0);
        let engine = SstaEngine::new(CellLibrary::new(tech.clone()), var, None);
        let model = to_core_pipeline(&engine.analyze_pipeline(&pipe));
        let d = model.delay_distribution();
        // Fixed *relative* timing margin: 2% above the mean.
        let y = model.yield_at(d.mean() * 1.02);
        t.row([
            tech.name().to_owned(),
            format!("{rand_mv:.0}"),
            format!("{:.2}", d.mean()),
            format!("{:.3}", d.sd()),
            format!("{:.3}", 100.0 * d.variability()),
            pct(y),
        ]);
    }
    println!("{}", t.render());
    println!("shape: at a constant relative timing margin, yield erodes monotonically as");
    println!("the node shrinks — the trend that motivates the paper's statistical design");
    println!("flow in the first place (its title's 'sub-100nm technologies').");
}
