//! Fig. 8: area vs delay curves of the three logic stages of the 3-stage
//! ALU–Decoder pipeline.
//!
//! Each stage is sized for minimum area at a sweep of statistical delay
//! targets around its own operating point (the paper's stages are
//! pre-balanced by construction; ours have different intrinsic speeds, so
//! each curve is normalized to its own operating point — the slopes, which
//! are what eq. 14 consumes, are invariant to that normalization). The
//! per-stage normalized slope `R_i` is reported underneath.
//!
//! Run: `cargo run --release -p vardelay-bench --bin fig8`

use vardelay_bench::library;
use vardelay_bench::render::xy_table;
use vardelay_circuit::generators::{alu_part1, alu_part2, decoder};
use vardelay_core::balance::classify_stage;
use vardelay_core::yield_model::stage_yield_target;
use vardelay_opt::sizing::{SizingConfig, StatisticalSizer};
use vardelay_opt::AreaDelayCurve;
use vardelay_process::VariationConfig;
use vardelay_ssta::SstaEngine;

fn main() {
    let engine = SstaEngine::new(library(), VariationConfig::random_only(35.0), None);
    let sizer = StatisticalSizer::new(engine.clone(), SizingConfig::default());
    let y_stage = stage_yield_target(0.80, 3);
    let kappa = vardelay_stats::inv_cap_phi(y_stage);

    let stages = [alu_part1(16), decoder(4), alu_part2(16)];
    println!("Fig. 8 — area vs delay curves of the ALU-Decoder stages");
    println!(
        "(per-stage yield target {:.2}%, eq. 12 allocation of 80%)\n",
        y_stage * 100.0
    );

    let rel = [0.90, 0.94, 0.98, 1.02, 1.06, 1.10];
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    let mut slopes = Vec::new();
    let mut ops = Vec::new();
    for s in &stages {
        // Per-stage operating point: its min-size statistical delay.
        let d = engine.stage_delay(s, 0);
        let d_op = d.mean() + kappa * d.sd();
        ops.push(d_op);
        let targets: Vec<f64> = rel.iter().map(|r| r * d_op).collect();
        let curve = AreaDelayCurve::generate(&sizer, s, 0, &targets, y_stage);
        // Normalize area to the point closest to the operating point.
        let base_area = curve
            .points()
            .iter()
            .min_by(|a, b| {
                (a.target_ps - d_op)
                    .abs()
                    .partial_cmp(&(b.target_ps - d_op).abs())
                    .expect("finite")
            })
            .expect("non-empty")
            .area;
        let ys: Vec<f64> = curve.points().iter().map(|p| p.area / base_area).collect();
        series.push((s.name().to_owned(), ys));
        slopes.push(curve.normalized_slope(d_op).unwrap_or(f64::NAN));
    }

    let series_ref: Vec<(&str, Vec<f64>)> = series
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    println!(
        "{}",
        xy_table("normalized delay", rel.as_ref(), &series_ref, 4)
    );
    for ((s, &r), d_op) in stages.iter().zip(&slopes).zip(&ops) {
        println!(
            "R({}) = {:.3} at operating point {:.1} ps -> {:?}",
            s.name(),
            r,
            d_op,
            classify_stage(if r.is_finite() { r } else { 1.0 })
        );
    }
    println!("\nshape check vs paper: every curve is convex decreasing (area buys speed with");
    println!("diminishing returns); the stages have distinct slopes, which is exactly what the");
    println!("eq.-14 imbalance heuristic exploits in Fig. 7 and Tables II/III.");
}
