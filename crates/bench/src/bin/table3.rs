//! Table III: area reduction at a fixed 80% pipeline yield target on the
//! 4-stage ISCAS85 pipeline.
//!
//! Setup: the target delay is relaxed to the slowest stage's ~97%
//! sized-frontier quantile — every stage can meet its allocation and the
//! conventional baseline over-delivers slightly. The Fig. 9 global flow
//! (goal: minimize area) then recovers area by relaxing the stages where
//! delay is expensive (high `R_i` — the big ALU) and keeping the cheap
//! stages fast.
//!
//! Like `table2`, this binary is a campaign driver: the frontier
//! placement that used to be an inline "~93% quantile" magic constant is
//! now the shared, documented `TargetDelayPolicy::table3()` policy, and
//! the whole experiment runs through `vardelay_engine::optimize` with a
//! Monte-Carlo cross-check of both designs.
//!
//! Run: `cargo run --release -p vardelay-bench --bin table3`

use vardelay_bench::iscas_pipeline_spec;
use vardelay_bench::render::{pct, TextTable};
use vardelay_engine::optimize::{OptimizationCampaign, OptimizeSpec, YieldBackendSpec};
use vardelay_engine::{run_campaign, KernelSpec, SweepOptions, TrialPlanSpec, VariationSpec};
use vardelay_opt::{OptimizationGoal, TargetDelayPolicy};

fn main() {
    let campaign = OptimizationCampaign {
        name: "table3".to_owned(),
        seed: 0x7AB3,
        runs: vec![OptimizeSpec {
            label: "iscas4 min-area at 80%".to_owned(),
            pipeline: iscas_pipeline_spec(),
            variation: VariationSpec::RandomOnly { sigma_mv: 35.0 },
            yield_target: 0.80,
            target_delay: TargetDelayPolicy::table3(),
            goal: OptimizationGoal::MinimizeArea,
            rounds: 8,
            yield_backend: YieldBackendSpec::Analytic,
            kernel: KernelSpec::default(),
            eval_trials: 2_048,
            verify_trials: 20_000,
            verify_plan: TrialPlanSpec::default(),
        }],
        grid: None,
    };
    let result = run_campaign(&campaign, &SweepOptions::default()).expect("campaign is valid");
    let run = &result.runs[0];
    let report = &run.report;
    let target = run.target_ps;
    let a_ind = report.pipeline_area_before;
    let a_glob = report.pipeline_area_after;

    println!("Table III — area reduction for a target yield of 80%");
    println!("4-stage ISCAS85 pipeline, target delay {target:.0} ps\n");

    let mut t = TextTable::new([
        "Stage logic",
        "Indiv area %",
        "Indiv yield %",
        "Proposed area %",
        "Proposed yield %",
        "R slope",
    ]);
    for s in &report.stages {
        t.row([
            s.name.clone(),
            format!("{:.1}", 100.0 * s.area_before / a_ind),
            pct(s.yield_before),
            format!("{:.1}", 100.0 * s.area_after / a_ind),
            pct(s.yield_after),
            format!("{:.2}", s.slope),
        ]);
    }
    t.row([
        "Pipeline:".to_owned(),
        "100.0".to_owned(),
        pct(run.individual.analytic_yield),
        format!("{:.1}", 100.0 * a_glob / a_ind),
        pct(report.pipeline_yield_after),
        "-".to_owned(),
    ]);
    println!("{}", t.render());

    println!(
        "area: 100% -> {:.1}% ({:+.1}%) at yield {} -> {} (target {})",
        100.0 * a_glob / a_ind,
        100.0 * report.area_delta_fraction(),
        pct(run.individual.analytic_yield),
        pct(report.pipeline_yield_after),
        pct(report.yield_target)
    );
    if let (Some(mi), Some(mg)) = (&run.individual.mc, &run.mc) {
        println!(
            "actual (MC, {} trials): {} -> {}  [model on measured moments: {} -> {}]",
            mg.trials,
            pct(mi.value),
            pct(mg.value),
            mi.model_from_mc.map_or("-".to_owned(), pct),
            mg.model_from_mc.map_or("-".to_owned(), pct),
        );
    }
    // "Optimize area (hence, power)" — §4: the saved width is saved power.
    let (p_ind, p_glob) = (&run.individual.power, &run.power);
    println!(
        "power (normalized): 100% -> {:.1}% (dynamic {:+.1}%, leakage {:+.1}%)",
        100.0 * p_glob.total() / p_ind.total(),
        100.0 * (p_glob.dynamic - p_ind.dynamic) / p_ind.dynamic,
        100.0 * (p_glob.leakage - p_ind.leakage) / p_ind.leakage
    );
    println!("\nshape check vs paper's Table III: same pipeline yield (>= 80%) with total area");
    println!("reduced (paper: 100% -> 91.6%, i.e. -8.4%), the saving concentrated in the");
    println!("highest-R stage while low-R stages are held fast.");
}
