//! Table III: area reduction at a fixed 80% pipeline yield target on the
//! 4-stage ISCAS85 pipeline.
//!
//! Setup: the target delay is relaxed enough that the conventional
//! individually-optimized flow lands at/above the yield target with
//! area to spare. The Fig. 9 global flow (goal: minimize area) then
//! recovers area by relaxing the stages where delay is expensive
//! (high `R_i` — the big ALU) and keeping the cheap stages fast.
//!
//! Run: `cargo run --release -p vardelay-bench --bin table3`

use vardelay_bench::render::{pct, TextTable};
use vardelay_bench::{library, to_core_pipeline};
use vardelay_circuit::generators::iscas;
use vardelay_circuit::{LatchParams, StagedPipeline};
use vardelay_opt::sizing::{SizingConfig, StatisticalSizer};
use vardelay_opt::{GlobalPipelineOptimizer, OptimizationGoal};
use vardelay_process::VariationConfig;
use vardelay_ssta::SstaEngine;
use vardelay_stats::inv_cap_phi;

fn main() {
    let engine = SstaEngine::new(library(), VariationConfig::random_only(35.0), None);
    let sizer = StatisticalSizer::new(engine.clone(), SizingConfig::default());
    let opt = GlobalPipelineOptimizer::new(sizer).with_rounds(8);

    let pipeline = StagedPipeline::new(
        "iscas4",
        iscas::table2_stages(),
        LatchParams::tg_msff_70nm(),
    );
    let yield_target = 0.80;
    let latch = pipeline.latch().overhead_ps();

    // Locate the slowest stage's sizing frontier (as in table2), then
    // relax: target at the frontier's ~93% quantile, so every stage can
    // meet its allocation and the baseline over-delivers slightly.
    let t0 = engine.analyze_pipeline(&pipeline);
    let slow_idx = (0..pipeline.stage_count())
        .max_by(|&a, &b| {
            t0.stage_delays[a]
                .mean()
                .partial_cmp(&t0.stage_delays[b].mean())
                .expect("finite")
        })
        .expect("non-empty");
    let provisional = t0.stage_delays[slow_idx].mean() * 0.62;
    let indiv1 = opt.optimize_individually(&pipeline, provisional, yield_target);
    let t1 = engine.analyze_pipeline(&indiv1);
    let (mu_b, sd_b) = (
        t1.stage_delays[slow_idx].mean() - latch,
        t1.stage_delays[slow_idx].sd(),
    );
    let target = mu_b + latch + inv_cap_phi(0.97) * sd_b;

    println!("Table III — area reduction for a target yield of 80%");
    println!("4-stage ISCAS85 pipeline, target delay {target:.0} ps\n");

    // Baseline: individually optimized.
    let indiv = opt.optimize_individually(&pipeline, target, yield_target);
    let t_ind = engine.analyze_pipeline(&indiv);
    let y_ind = to_core_pipeline(&t_ind).yield_at(target);
    let a_ind: f64 = indiv.total_area();

    // Proposed: minimize area subject to the same yield target.
    let (glob, report) = opt.optimize(&indiv, target, yield_target, OptimizationGoal::MinimizeArea);
    let t_glob = engine.analyze_pipeline(&glob);
    let a_glob: f64 = glob.total_area();

    let mut t = TextTable::new([
        "Stage logic",
        "Indiv area %",
        "Indiv yield %",
        "Proposed area %",
        "Proposed yield %",
        "R slope",
    ]);
    for (i, s) in pipeline.stages().iter().enumerate() {
        t.row([
            s.name().to_owned(),
            format!("{:.1}", 100.0 * indiv.stage_areas()[i] / a_ind),
            pct(t_ind.stage_delays[i].cdf(target)),
            format!("{:.1}", 100.0 * glob.stage_areas()[i] / a_ind),
            pct(t_glob.stage_delays[i].cdf(target)),
            format!("{:.2}", report.stages[i].slope),
        ]);
    }
    t.row([
        "Pipeline:".to_owned(),
        "100.0".to_owned(),
        pct(y_ind),
        format!("{:.1}", 100.0 * a_glob / a_ind),
        pct(report.pipeline_yield_after),
        "-".to_owned(),
    ]);
    println!("{}", t.render());

    println!(
        "area: 100% -> {:.1}% ({:+.1}%) at yield {} -> {} (target {})",
        100.0 * a_glob / a_ind,
        100.0 * (a_glob - a_ind) / a_ind,
        pct(y_ind),
        pct(report.pipeline_yield_after),
        pct(yield_target)
    );
    // "Optimize area (hence, power)" — §4: the saved width is saved power.
    let pw = vardelay_circuit::power::PowerParams::default();
    let tech = library().tech().clone();
    let p_ind = vardelay_circuit::power::pipeline_power(&indiv, &tech, &pw, 0.0);
    let p_glob = vardelay_circuit::power::pipeline_power(&glob, &tech, &pw, 0.0);
    println!(
        "power (normalized): 100% -> {:.1}% (dynamic {:+.1}%, leakage {:+.1}%)",
        100.0 * p_glob.total() / p_ind.total(),
        100.0 * (p_glob.dynamic - p_ind.dynamic) / p_ind.dynamic,
        100.0 * (p_glob.leakage - p_ind.leakage) / p_ind.leakage
    );
    println!("\nshape check vs paper's Table III: same pipeline yield (>= 80%) with total area");
    println!("reduced (paper: 100% -> 91.6%, i.e. -8.4%), the saving concentrated in the");
    println!("highest-R stage while low-R stages are held fast.");
}
