//! Fig. 5: variability (σ/μ) trends.
//!
//! (a) stage-delay variability vs logic depth under four variation mixes;
//! (b) pipeline-delay variability vs number of stages for three stage
//!     correlations;
//! (c) pipeline-delay variability when logic depth and stage count trade
//!     off at constant total depth (NL × NS = 120) for three inter-die
//!     strengths.
//!
//! Every panel is a declarative analytic-only [`Sweep`] run on the
//! engine (trials = 0: pure SSTA + Clark), replacing the former
//! per-panel loops.
//!
//! Run: `cargo run --release -p vardelay-bench --bin fig5 [-- a|b|c]`

use vardelay_bench::render::xy_table;
use vardelay_engine::{
    run_sweep, BackendSpec, GridSpec, KernelSpec, LatchSpec, PipelineSpec, Scenario, StageMoments,
    Sweep, SweepOptions, TrialPlanSpec, VariationSpec,
};

/// Runs an analytic-only sweep and returns each scenario's σ/μ.
fn variabilities(name: &str, scenarios: Vec<Scenario>) -> Vec<f64> {
    let sweep = Sweep {
        name: name.to_owned(),
        seed: 0,
        scenarios,
        grid: None,
    };
    run_sweep(&sweep, &SweepOptions::default())
        .expect("valid spec")
        .scenarios
        .iter()
        .map(|s| s.analytic.variability)
        .collect()
}

fn analytic_scenario(label: String, pipeline: PipelineSpec, variation: VariationSpec) -> Scenario {
    Scenario {
        label,
        pipeline,
        variation,
        trials: 0,
        trial_plan: TrialPlanSpec::default(),
        yield_targets: vec![],
        auto_target_sigmas: vec![],
        backend: BackendSpec::Analytic,
        kernel: KernelSpec::default(),
        histogram_bins: 0,
    }
}

fn panel_a() {
    println!("--- Fig. 5(a): stage-delay variability vs logic depth (normalized to depth 5) ---");
    let depths: Vec<usize> = vec![5, 8, 10, 15, 20, 25, 30, 35, 40];
    let variations: Vec<(&str, VariationSpec)> = vec![
        (
            "random intra only",
            VariationSpec::RandomOnly { sigma_mv: 35.0 },
        ),
        (
            "intra + inter 20mV",
            VariationSpec::Combined {
                inter_mv: 20.0,
                random_mv: 35.0,
                systematic_mv: 0.0,
            },
        ),
        (
            "intra + inter 40mV",
            VariationSpec::Combined {
                inter_mv: 40.0,
                random_mv: 35.0,
                systematic_mv: 0.0,
            },
        ),
        (
            "inter only 40mV",
            VariationSpec::InterOnly { sigma_mv: 40.0 },
        ),
    ];

    // A single-stage grid sweep: depth-major, variation-minor order.
    let sweep = Sweep {
        name: "fig5a".to_owned(),
        seed: 0,
        scenarios: vec![],
        grid: Some(GridSpec {
            stage_counts: vec![1],
            logic_depths: depths.clone(),
            sizes: vec![1.0],
            variations: variations.iter().map(|(_, v)| *v).collect(),
            latch: LatchSpec::Ideal,
            trials: 0,
            trial_plan: TrialPlanSpec::default(),
            yield_targets: vec![],
            auto_target_sigmas: vec![],
            backend: BackendSpec::Pipeline,
            kernel: KernelSpec::default(),
            histogram_bins: 0,
        }),
    };
    let vars: Vec<f64> = run_sweep(&sweep, &SweepOptions::default())
        .expect("valid spec")
        .scenarios
        .iter()
        .map(|s| s.analytic.variability)
        .collect();

    let nv = variations.len();
    let xs: Vec<f64> = depths.iter().map(|&d| d as f64).collect();
    let series: Vec<(&str, Vec<f64>)> = variations
        .iter()
        .enumerate()
        .map(|(vi, (name, _))| {
            let base = vars[vi];
            (
                *name,
                (0..depths.len())
                    .map(|di| vars[di * nv + vi] / base)
                    .collect(),
            )
        })
        .collect();
    println!("{}", xy_table("logic depth", &xs, &series, 4));
    println!("shape check: random-only falls as 1/sqrt(NL); curves flatten as inter-die");
    println!("strength grows; inter-only is flat at 1.\n");
}

fn panel_b() {
    println!("--- Fig. 5(b): pipeline variability vs number of stages (normalized to Ns=4) ---");
    let ns_axis: Vec<usize> = vec![4, 8, 12, 16, 20, 24, 28, 32, 36, 40];
    let rhos = [0.0, 0.2, 0.5];
    let stage = StageMoments {
        mu_ps: 100.0,
        sigma_ps: 4.0,
    };

    let scenarios: Vec<Scenario> = rhos
        .iter()
        .flat_map(|&rho| {
            ns_axis.iter().map(move |&ns| {
                analytic_scenario(
                    format!("{ns} stages rho {rho}"),
                    PipelineSpec::Moments {
                        stages: vec![stage; ns],
                        rho,
                    },
                    VariationSpec::Nominal,
                )
            })
        })
        .collect();
    let vars = variabilities("fig5b", scenarios);

    let xs: Vec<f64> = ns_axis.iter().map(|&n| n as f64).collect();
    let series: Vec<(String, Vec<f64>)> = rhos
        .iter()
        .enumerate()
        .map(|(ri, &rho)| {
            let row = &vars[ri * ns_axis.len()..(ri + 1) * ns_axis.len()];
            (
                format!("rho = {rho}"),
                row.iter().map(|v| v / row[0]).collect(),
            )
        })
        .collect();
    let series_ref: Vec<(&str, Vec<f64>)> = series
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    println!("{}", xy_table("stages", &xs, &series_ref, 4));
    println!("shape check: the max over more stages concentrates (variability falls with Ns),");
    println!("and correlation weakens the effect (rho=0.5 decays less than rho=0).\n");
}

fn panel_c() {
    println!("--- Fig. 5(c): sigma/mu vs number of stages with NL x NS = 120 ---");
    let total = 120usize;
    let stage_counts: Vec<usize> = vec![2, 3, 4, 5, 6, 8, 10, 12, 15, 20, 24, 30];
    let inter_levels = [0.0, 20.0, 40.0];

    let scenarios: Vec<Scenario> = inter_levels
        .iter()
        .flat_map(|&inter| {
            stage_counts.iter().map(move |&ns| {
                analytic_scenario(
                    format!("{ns}x{} inter {inter}mV", total / ns),
                    PipelineSpec::InverterGrid {
                        stages: ns,
                        depth: total / ns,
                        size: 1.0,
                        latch: LatchSpec::Ideal,
                    },
                    VariationSpec::Combined {
                        inter_mv: inter,
                        random_mv: 35.0,
                        systematic_mv: 0.0,
                    },
                )
            })
        })
        .collect();
    let vars = variabilities("fig5c", scenarios);

    let xs: Vec<f64> = stage_counts.iter().map(|&n| n as f64).collect();
    let series: Vec<(String, Vec<f64>)> = inter_levels
        .iter()
        .enumerate()
        .map(|(ii, &inter)| {
            (
                format!("sigmaVthInter = {inter} mV"),
                vars[ii * stage_counts.len()..(ii + 1) * stage_counts.len()].to_vec(),
            )
        })
        .collect();
    let series_ref: Vec<(&str, Vec<f64>)> = series
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    println!("{}", xy_table("stages (NL = 120/NS)", &xs, &series_ref, 5));
    println!("shape check: with intra-only (0 mV) variability RISES with stage count (shallow");
    println!("stages are noisier and the max cannot compensate); with 40 mV inter-die it FALLS");
    println!("(stage sigma/mu is depth-insensitive, so the max-function effect wins).");
}

fn main() {
    let arg = std::env::args().nth(1);
    println!("Fig. 5 — variability of stage and pipeline delay (engine analytic sweeps)\n");
    match arg.as_deref() {
        Some("a") => panel_a(),
        Some("b") => panel_b(),
        Some("c") => panel_c(),
        _ => {
            panel_a();
            panel_b();
            panel_c();
        }
    }
}
