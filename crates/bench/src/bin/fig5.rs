//! Fig. 5: variability (σ/μ) trends.
//!
//! (a) stage-delay variability vs logic depth under four variation mixes;
//! (b) pipeline-delay variability vs number of stages for three stage
//!     correlations;
//! (c) pipeline-delay variability when logic depth and stage count trade
//!     off at constant total depth (NL × NS = 120) for three inter-die
//!     strengths.
//!
//! Run: `cargo run --release -p vardelay-bench --bin fig5 [-- a|b|c]`

use vardelay_bench::{engine, library, Scenario};
use vardelay_bench::render::xy_table;
use vardelay_circuit::generators::inverter_chain;
use vardelay_core::variability::pipeline_variability;
use vardelay_process::VariationConfig;
use vardelay_ssta::SstaEngine;
use vardelay_stats::Normal;

fn stage_var(var: VariationConfig, nl: usize) -> f64 {
    SstaEngine::new(library(), var, None)
        .stage_delay(&inverter_chain(nl, 1.0), 0)
        .variability()
}

fn panel_a() {
    println!("--- Fig. 5(a): stage-delay variability vs logic depth (normalized to depth 5) ---");
    let depths: Vec<usize> = vec![5, 8, 10, 15, 20, 25, 30, 35, 40];
    let scenarios: Vec<(&str, VariationConfig)> = vec![
        ("random intra only", VariationConfig::random_only(35.0)),
        ("intra + inter 20mV", VariationConfig::combined(20.0, 35.0, 0.0)),
        ("intra + inter 40mV", VariationConfig::combined(40.0, 35.0, 0.0)),
        ("inter only 40mV", VariationConfig::inter_only(40.0)),
    ];
    let xs: Vec<f64> = depths.iter().map(|&d| d as f64).collect();
    let series: Vec<(&str, Vec<f64>)> = scenarios
        .iter()
        .map(|(name, var)| {
            let base = stage_var(*var, depths[0]);
            (
                *name,
                depths.iter().map(|&nl| stage_var(*var, nl) / base).collect(),
            )
        })
        .collect();
    println!("{}", xy_table("logic depth", &xs, &series, 4));
    println!("shape check: random-only falls as 1/sqrt(NL); curves flatten as inter-die");
    println!("strength grows; inter-only is flat at 1.\n");
}

fn panel_b() {
    println!("--- Fig. 5(b): pipeline variability vs number of stages (normalized to Ns=4) ---");
    let ns_axis: Vec<usize> = vec![4, 8, 12, 16, 20, 24, 28, 32, 36, 40];
    let stage = Normal::new(100.0, 4.0).expect("valid");
    let xs: Vec<f64> = ns_axis.iter().map(|&n| n as f64).collect();
    let series: Vec<(String, Vec<f64>)> = [0.0, 0.2, 0.5]
        .iter()
        .map(|&rho| {
            let base = pipeline_variability(ns_axis[0], stage, rho);
            (
                format!("rho = {rho}"),
                ns_axis
                    .iter()
                    .map(|&ns| pipeline_variability(ns, stage, rho) / base)
                    .collect(),
            )
        })
        .collect();
    let series_ref: Vec<(&str, Vec<f64>)> = series
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    println!("{}", xy_table("stages", &xs, &series_ref, 4));
    println!("shape check: the max over more stages concentrates (variability falls with Ns),");
    println!("and correlation weakens the effect (rho=0.5 decays less than rho=0).\n");
}

fn panel_c() {
    println!("--- Fig. 5(c): sigma/mu vs number of stages with NL x NS = 120 ---");
    let total = 120usize;
    let stage_counts: Vec<usize> = vec![2, 3, 4, 5, 6, 8, 10, 12, 15, 20, 24, 30];
    let inter_levels = [0.0, 20.0, 40.0];
    let xs: Vec<f64> = stage_counts.iter().map(|&n| n as f64).collect();
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for &inter in &inter_levels {
        let var = VariationConfig::combined(inter, 35.0, 0.0);
        let eng = SstaEngine::new(library(), var, None);
        let ys: Vec<f64> = stage_counts
            .iter()
            .map(|&ns| {
                let nl = total / ns;
                let p = vardelay_circuit::StagedPipeline::inverter_grid(
                    ns,
                    nl,
                    1.0,
                    vardelay_circuit::LatchParams::ideal(),
                );
                let timing = eng.analyze_pipeline(&p);
                vardelay_bench::to_core_pipeline(&timing)
                    .delay_distribution()
                    .variability()
            })
            .collect();
        series.push((format!("sigmaVthInter = {inter} mV"), ys));
    }
    let series_ref: Vec<(&str, Vec<f64>)> = series
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    println!("{}", xy_table("stages (NL = 120/NS)", &xs, &series_ref, 5));
    println!("shape check: with intra-only (0 mV) variability RISES with stage count (shallow");
    println!("stages are noisier and the max cannot compensate); with 40 mV inter-die it FALLS");
    println!("(stage sigma/mu is depth-insensitive, so the max-function effect wins).");
}

fn main() {
    let arg = std::env::args().nth(1);
    println!("Fig. 5 — variability of stage and pipeline delay ({})\n", engine(Scenario::IntraRandomOnly).library().tech().name());
    match arg.as_deref() {
        Some("a") => panel_a(),
        Some("b") => panel_b(),
        Some("c") => panel_c(),
        _ => {
            panel_a();
            panel_b();
            panel_c();
        }
    }
}
