//! Fig. 7: effect of unbalancing the 3-stage ALU–Decoder pipeline on
//! (a) the pipeline-delay distribution and (b) yield at constant area.
//!
//! Flow (mirroring §3.2): each stage's area–delay slope `R_i` is measured
//! from its sized curve (the Fig. 8 artifact); the balanced reference has
//! all three stages meeting the same target with the eq.-12 per-stage
//! yield `Y^(1/3)`; the unbalanced designs perform an area-neutral delay
//! exchange — donors are the steep-slope stages, the receiver the
//! shallow-slope one — swept from "proper" to "excessive" imbalance.
//!
//! Run: `cargo run --release -p vardelay-bench --bin fig7`

use vardelay_bench::library;
use vardelay_bench::render::{pct, TextTable};
use vardelay_circuit::generators::{alu_part1, alu_part2, decoder};
use vardelay_core::balance::{balanced_pipeline, best_point, imbalance_sweep};
use vardelay_core::yield_model::stage_yield_target;
use vardelay_opt::sizing::{SizingConfig, StatisticalSizer};
use vardelay_opt::AreaDelayCurve;
use vardelay_process::VariationConfig;
use vardelay_ssta::SstaEngine;
use vardelay_stats::inv_cap_phi;

fn main() {
    let engine = SstaEngine::new(library(), VariationConfig::random_only(35.0), None);
    let sizer = StatisticalSizer::new(engine.clone(), SizingConfig::default());
    let stages = [alu_part1(16), decoder(4), alu_part2(16)];

    println!("Fig. 7 — balanced vs unbalanced 3-stage ALU-Decoder pipeline\n");

    // Measure each stage's slope at its own operating point (Fig. 8).
    let y_alloc = stage_yield_target(0.80, 3);
    let kappa = inv_cap_phi(y_alloc);
    let mut slopes = Vec::new();
    let mut rep_sigma = 0.0_f64; // representative sized-stage sigma
    for s in &stages {
        let d = engine.stage_delay(s, 0);
        let d_op = d.mean() + kappa * d.sd();
        let targets: Vec<f64> = [0.90, 0.96, 1.02, 1.08].iter().map(|r| r * d_op).collect();
        let curve = AreaDelayCurve::generate(&sizer, s, 0, &targets, y_alloc);
        slopes.push(curve.normalized_slope(d_op).unwrap_or(1.0));
        rep_sigma = rep_sigma.max(d.sd());
    }
    let receiver = (0..3)
        .min_by(|&a, &b| slopes[a].partial_cmp(&slopes[b]).expect("finite"))
        .expect("three stages");
    let donors: Vec<usize> = (0..3).filter(|&i| i != receiver).collect();
    println!(
        "measured slopes R = [{:.2}, {:.2}, {:.2}]; receiver = {} ({}), donors = the others\n",
        slopes[0],
        slopes[1],
        slopes[2],
        receiver,
        stages[receiver].name()
    );

    // Fixed evaluation target, like the paper's 179 ps.
    let target = 179.0;

    let mut t = TextTable::new([
        "target yield %",
        "balanced yield %",
        "unbalanced (best) %",
        "unbalanced (worst) %",
        "best delta (ps)",
    ]);

    for &y_target in &[0.70, 0.75, 0.80] {
        // Balanced design: each stage's mean set so its marginal yield at
        // the target is exactly Y^(1/3) with the representative sigma.
        let y_stage = stage_yield_target(y_target, 3);
        let mu_b = target - inv_cap_phi(y_stage) * rep_sigma;
        let balanced = balanced_pipeline(3, mu_b, rep_sigma).expect("valid moments");
        let y_balanced = balanced.yield_at(target);

        let deltas: Vec<f64> = (0..120).map(|i| f64::from(i) * 0.05).collect();
        let sweep = imbalance_sweep(&balanced, &donors, receiver, &slopes, target, &deltas)
            .expect("valid sweep");
        let best = best_point(&sweep);
        // "Worst-case unbalancing" (paper's lowest curve): a moderate but
        // clearly excessive imbalance, ~0.75 sigma of extra donor delay.
        let worst_delta = best.delta_ps + 0.75 * rep_sigma;
        let worst = sweep
            .iter()
            .min_by(|a, b| {
                (a.delta_ps - worst_delta)
                    .abs()
                    .partial_cmp(&(b.delta_ps - worst_delta).abs())
                    .expect("finite")
            })
            .expect("non-empty");

        t.row([
            pct(y_target),
            pct(y_balanced),
            pct(best.yield_value),
            pct(worst.yield_value),
            format!("{:.2}", best.delta_ps),
        ]);

        if (y_target - 0.80).abs() < 1e-9 {
            let unb = sweep
                .iter()
                .find(|p| (p.delta_ps - best.delta_ps).abs() < 1e-12)
                .expect("best point in sweep");
            println!("--- Fig. 7(a): pipeline delay distribution at the 80% design point ---");
            println!(
                "balanced:   mu = {:.2} ps, sigma = {:.2} ps, yield {}%",
                balanced.delay_distribution().mean(),
                balanced.delay_distribution().sd(),
                pct(y_balanced)
            );
            println!(
                "unbalanced: mu = {:.2} ps, sigma = {:.2} ps, yield {}%  (delta = {:.2} ps)",
                unb.mean_ps,
                unb.sd_ps,
                pct(unb.yield_value),
                unb.delta_ps
            );
            println!(
                "reduction in mean pipeline delay: {:.2} ps; target delay {target:.0} ps\n",
                balanced.delay_distribution().mean() - unb.mean_ps
            );
        }
    }

    println!("--- Fig. 7(b): achieved yield at constant area ---");
    println!("{}", t.render());
    println!("shape check vs paper: proper imbalance beats balanced at every target (the paper");
    println!("reports ~9 points at 80%); excessive imbalance gives diminishing or negative");
    println!("returns as the slowed donors' means start to dominate the pipeline delay.");
}
