//! Machine-readable performance summary: writes `BENCH_10.json`.
//!
//! CI runs this after the criterion benches so the perf trajectory is
//! tracked as data, not just as log lines: campaign wall-clock per
//! backend **with its phase breakdown** (sizing / criticality / MC
//! verification ms, attributed by the `vardelay-obs` metrics layer
//! instead of hand-placed timers), sizing throughput on both kernels
//! (the old-vs-new ratio is the incremental kernel's headline), raw
//! retime-probe cost, and the Monte-Carlo verification throughput in
//! trials/sec on **all three trial kernels**. Timings are the median
//! of `SAMPLES` runs on a warmed process.
//!
//! This PR's headline is the **v3 wide kernel + pooled verification**
//! section: the lane-major structure-of-arrays kernel must clear
//! [`V3_OVER_V2_FLOOR`]× the v2 rate measured in the same process
//! (host noise cancels, so the ratio gates unconditionally), and the
//! `mc_verify_parallel` block times the v3 chunked verification fold
//! sequentially vs through the worker pool. The pooled bytes are
//! asserted identical to the sequential fold **unconditionally**; the
//! wall-clock speedup is only gated (≥[`MC_VERIFY_PARALLEL_FLOOR`]×)
//! when the host actually has ≥4 cores — on a single-core runner the
//! pool cannot manifest a speedup and the entry is informational.
//!
//! With `--baseline <prev.json>` the run also **gates regressions**:
//! if the incremental-kernel speedup or the MC verification throughput
//! fell more than [`REGRESSION_TOLERANCE`] below the checked-in
//! previous BENCH file, the process exits non-zero and CI fails.
//! Ratios (speedups) are machine-independent; trials/sec is noisy
//! across hosts, which is why the tolerance is a generous 20%. The v2
//! batch kernel additionally gates **forward**: its throughput must be
//! at least [`V2_SPEEDUP_FLOOR`]× the baseline's v1 rate, measured in
//! the same process so host noise cancels.
//!
//! The **result cache** gates carry forward: a warm campaign rerun
//! against a populated content-addressed store must reproduce the cold
//! bytes exactly while costing at most [`WARM_FRACTION_CEILING`] of the
//! cold wall-clock. The fraction is a same-process ratio, so it gates
//! unconditionally — no baseline file needed.
//!
//! The **trial-plan** gates carry forward: variance-reduction factors
//! of the stratified / Sobol / antithetic sampling plans versus plain
//! Monte-Carlo at a matched trial budget (stratified and Sobol must
//! clear [`PLAN_VRF_FLOOR`]×), plus the high-sigma blockade
//! demonstration. Both are same-process seed-deterministic ratios, so
//! they gate unconditionally.
//!
//! Usage: `cargo run --release -p vardelay-bench --bin bench_summary
//! [out.json] [--baseline prev.json]` (default out `BENCH_10.json`).

use std::time::Instant;

use serde::Deserialize as _;
use vardelay_cache::{ResultStore, UnitCache};
use vardelay_circuit::generators::{inverter_chain, random_logic, RandomLogicConfig};
use vardelay_circuit::{CellLibrary, LatchParams, StagedPipeline};
use vardelay_engine::optimize::{OptimizationCampaign, OptimizeSpec, YieldBackendSpec};
use vardelay_engine::{
    run_campaign, run_workload, KernelSpec, LatchSpec, PipelineSpec, SweepOptions, TrialPlanSpec,
    VariationSpec, WorkloadOptions,
};
use vardelay_mc::{
    PipelineBlockStats, PipelineMc, PreparedPipelineMc, TrialKernel, TrialPlan, TrialStrategy,
};
use vardelay_opt::{OptimizationGoal, SizingConfig, StatisticalSizer, TargetDelayPolicy};
use vardelay_process::VariationConfig;
use vardelay_ssta::sta::arrival_times;
use vardelay_ssta::{SstaEngine, StageTimer};
use vardelay_stats::counter_seed;

/// Timing samples per measurement (median reported).
const SAMPLES: usize = 5;

/// Median wall-clock of `f` in milliseconds over [`SAMPLES`] runs.
fn median_ms(mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// Phase attribution of one campaign run, read off the obs aggregate.
struct CampaignSample {
    wall_ms: f64,
    sizing_ms: f64,
    criticality_ms: f64,
    mc_verify_ms: f64,
}

/// Runs `f` under a recording session [`SAMPLES`] times and returns the
/// median-wall-clock sample with its phase breakdown. The span overhead
/// is in the nanoseconds per sizing move — noise at campaign scale —
/// and identical across PRs, so medians stay comparable.
fn median_traced(mut f: impl FnMut()) -> CampaignSample {
    let ns_to_ms = |ns: u64| ns as f64 / 1e6;
    let mut samples: Vec<CampaignSample> = (0..SAMPLES)
        .map(|_| {
            let session = vardelay_obs::Session::start();
            let t = Instant::now();
            f();
            let wall_ms = t.elapsed().as_secs_f64() * 1e3;
            let agg = vardelay_obs::aggregate(&session.finish());
            CampaignSample {
                wall_ms,
                sizing_ms: ns_to_ms(agg.phase_ns("opt/size_stage")),
                criticality_ms: ns_to_ms(agg.phase_ns("opt/criticality")),
                mc_verify_ms: ns_to_ms(agg.phase_ns("mc/verify")),
            }
        })
        .collect();
    samples.sort_by(|a, b| a.wall_ms.partial_cmp(&b.wall_ms).expect("finite times"));
    samples.remove(samples.len() / 2)
}

fn campaign(backend: YieldBackendSpec) -> OptimizationCampaign {
    OptimizationCampaign {
        name: format!("bench-{}", backend.keyword()),
        seed: 0xBE7C,
        runs: vec![OptimizeSpec {
            label: format!("chains ensure 80% ({})", backend.keyword()),
            pipeline: PipelineSpec::InverterStages {
                depths: vec![30, 29, 29, 29],
                size: 1.0,
                latch: LatchSpec::TgMsff70nm,
            },
            variation: VariationSpec::RandomOnly { sigma_mv: 35.0 },
            yield_target: 0.80,
            target_delay: TargetDelayPolicy::FrontierQuantile { q: 0.86, refine: 3 },
            goal: OptimizationGoal::EnsureYield,
            rounds: 3,
            yield_backend: backend,
            kernel: KernelSpec::default(),
            eval_trials: 1_024,
            verify_trials: 4_096,
            verify_plan: TrialPlanSpec::default(),
        }],
        grid: None,
    }
}

/// Allowed fractional drop versus the baseline before CI fails.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// The v2 batch kernel must clear this multiple of the v1 trial rate.
/// Both rates are measured in the same process on the same pipeline,
/// so the ratio is host-independent even though each rate is not.
const V2_SPEEDUP_FLOOR: f64 = 3.0;

/// The v3 wide kernel must clear this multiple of the v2 rate, same
/// process, same pipeline — an unconditional single-thread gate (the
/// lane-major layout must pay for itself before any pooling).
const V3_OVER_V2_FLOOR: f64 = 1.5;

/// Pooled v3 verification must be at least this much faster than the
/// sequential fold — gated only on hosts with ≥4 cores, where the pool
/// has hardware to spread over. The byte-identity of the pooled fold
/// is asserted on every host regardless.
const MC_VERIFY_PARALLEL_FLOOR: f64 = 2.0;

/// A warm (fully cached) campaign rerun may cost at most this fraction
/// of the cold run's wall-clock. Both sides are measured in the same
/// process, so the ratio gates unconditionally.
const WARM_FRACTION_CEILING: f64 = 0.25;

/// Stratified and Sobol plans must cut the yield-estimator variance by
/// at least this factor versus plain MC at a matched budget — the
/// "≥4x fewer trials at the same confidence" headline. The ratio is
/// seed-deterministic and same-process, so it gates unconditionally.
const PLAN_VRF_FLOOR: f64 = 4.0;

/// z for a 90% one-sided body yield target (Phi^-1(0.90)).
const Z_BODY: f64 = 1.2816;

/// z for the 99.95% high-sigma target (Phi^-1(0.9995)) — close enough
/// to the 99.9% decision line that plain MC cannot separate the two at
/// a few thousand trials, while blockade can.
const Z_HIGH_SIGMA: f64 = 3.2905;

/// Reads one numeric metric out of a parsed BENCH file.
fn metric(v: &serde::Value, path: &[&str]) -> f64 {
    let mut cur = v;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("baseline is missing `{}`", path.join(".")));
    }
    f64::from_value(cur).unwrap_or_else(|_| panic!("baseline `{}` is not a number", path.join(".")))
}

/// Fails the process if a lower-is-worse metric regressed beyond
/// tolerance.
fn gate(name: &str, current: f64, baseline: f64) -> bool {
    let floor = baseline * (1.0 - REGRESSION_TOLERANCE);
    let ok = current >= floor;
    println!(
        "gate {name}: current {current:.3} vs baseline {baseline:.3} (floor {floor:.3}) — {}",
        if ok { "ok" } else { "REGRESSED" }
    );
    ok
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = match args.iter().position(|a| a == "--baseline") {
        Some(i) => {
            args.remove(i);
            if i >= args.len() {
                eprintln!("--baseline requires a file");
                std::process::exit(2);
            }
            Some(args.remove(i))
        }
        None => None,
    };
    if args.len() > 1 {
        eprintln!("usage: bench_summary [out.json] [--baseline prev.json]");
        std::process::exit(2);
    }
    let out_path = args.pop().unwrap_or_else(|| "BENCH_10.json".to_owned());

    // --- Campaign wall-clock + phase breakdown per backend. ---
    // Determinism is asserted both across worker counts and across the
    // traced/untraced boundary: recording spans must not change bytes.
    let mut campaign_samples = Vec::new();
    for backend in [YieldBackendSpec::Analytic, YieldBackendSpec::Netlist] {
        let spec = campaign(backend);
        let a = run_campaign(&spec, &SweepOptions::sequential()).unwrap();
        let b = run_campaign(&spec, &SweepOptions::sequential().with_workers(4)).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "worker count must not matter");
        let session = vardelay_obs::Session::start();
        let traced = run_campaign(&spec, &SweepOptions::sequential()).unwrap();
        drop(session.finish());
        assert_eq!(
            a.to_json(),
            traced.to_json(),
            "tracing must not change bytes"
        );
        let sample = median_traced(|| {
            std::hint::black_box(run_campaign(&spec, &SweepOptions::sequential()).unwrap());
        });
        campaign_samples.push((backend.keyword(), sample));
    }

    // --- Result cache: cold vs warm campaign (incremental recompute). ---
    // Cold runs start from an empty store (populate + execute); warm
    // runs serve every unit from the store. Warm bytes must equal a
    // plain uncached run's bytes, at a 100% hit rate.
    let cache_spec = campaign(YieldBackendSpec::Analytic);
    let cache_dir =
        std::env::temp_dir().join(format!("vardelay-bench-cache-{}", std::process::id()));
    let cache_cold_ms = median_ms(|| {
        let _ = std::fs::remove_dir_all(&cache_dir);
        let cache = UnitCache::new(ResultStore::open(&cache_dir).expect("open cache"));
        let opts = WorkloadOptions::sequential().with_cache(&cache);
        std::hint::black_box(run_workload(&cache_spec, &opts).expect("cold cached run"));
    });
    // The final cold iteration left a fully populated store behind.
    let cache_warm_ms = median_ms(|| {
        let cache = UnitCache::new(ResultStore::open(&cache_dir).expect("open cache"));
        let opts = WorkloadOptions::sequential().with_cache(&cache);
        std::hint::black_box(run_workload(&cache_spec, &opts).expect("warm cached run"));
    });
    let session = vardelay_obs::Session::start();
    let cache = UnitCache::new(ResultStore::open(&cache_dir).expect("open cache"));
    let warm = run_workload(
        &cache_spec,
        &WorkloadOptions::sequential().with_cache(&cache),
    )
    .expect("warm cached run");
    let agg = vardelay_obs::aggregate(&session.finish());
    let (hits, misses) = (agg.counter("cache/hit"), agg.counter("cache/miss"));
    assert_eq!(misses, 0, "warm run must be all hits");
    let cache_hit_rate = hits as f64 / (hits + misses) as f64;
    assert_eq!(
        warm.to_json(),
        run_campaign(&cache_spec, &SweepOptions::sequential())
            .expect("uncached run")
            .to_json(),
        "warm cache run must reproduce uncached bytes"
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
    let warm_fraction = cache_warm_ms / cache_cold_ms;

    // --- Sizing throughput: incremental vs full-pass kernel. ---
    let engine = SstaEngine::new(
        CellLibrary::default(),
        VariationConfig::random_only(35.0),
        None,
    );
    let incremental = StatisticalSizer::new(engine.clone(), SizingConfig::default());
    let full = incremental.clone().with_full_pass_kernel();
    let stage = random_logic(&RandomLogicConfig {
        name: "bench_stage".into(),
        inputs: 24,
        gates: 200,
        depth: 14,
        outputs: 12,
        seed: 77,
    });
    let target = engine.stage_delay(&stage, 0).mean() * 0.92;
    let ra = incremental.size_stage(&stage, 0, target, 0.9);
    let rb = full.size_stage(&stage, 0, target, 0.9);
    assert_eq!(ra.netlist, rb.netlist, "kernels diverged");
    let size_inc_ms = median_ms(|| {
        std::hint::black_box(incremental.size_stage(&stage, 0, target, 0.9));
    });
    let size_full_ms = median_ms(|| {
        std::hint::black_box(full.size_stage(&stage, 0, target, 0.9));
    });

    // --- Raw retime probe (candidate-scoring primitive). ---
    let lib = CellLibrary::default();
    let mut timer = StageTimer::new(stage.clone(), &lib, 3.0);
    let gi = stage.gate_count() / 2;
    let probes = 20_000u32;
    let probe_inc_ms = median_ms(|| {
        for _ in 0..probes {
            let s = timer.size_of(gi);
            timer.try_size(gi, s * 1.15);
            std::hint::black_box(timer.delay());
            timer.rollback();
        }
    }) / probes as f64;
    let mut work = stage.clone();
    let probes_full = 500u32;
    let probe_full_ms = median_ms(|| {
        for _ in 0..probes_full {
            let s = work.gates()[gi].size;
            work.set_gate_size(gi, s * 1.15);
            std::hint::black_box(arrival_times(&work, &lib, 3.0, None));
            work.set_gate_size(gi, s);
        }
    }) / probes_full as f64;
    assert_eq!(
        timer.arrivals(),
        &arrival_times(&stage, &lib, 3.0, None)[..],
        "probe loop must leave timing bit-identical"
    );

    // --- Verification MC throughput (bit-frozen trial arithmetic). ---
    let var = VariationConfig::random_only(35.0);
    let mc = PipelineMc::new(CellLibrary::default(), var, None);
    let pipe = StagedPipeline::new(
        "verify",
        vec![
            inverter_chain(30, 1.0),
            inverter_chain(29, 1.0),
            inverter_chain(29, 1.0),
            inverter_chain(29, 1.0),
        ],
        LatchParams::tg_msff_70nm(),
    );
    let prepared = PreparedPipelineMc::new(&mc, &pipe);
    let mut ws = prepared.workspace();
    let trials = 8_192u64;
    let verify_ms = median_ms(|| {
        let mut stats = PipelineBlockStats::new(pipe.stage_count(), &[150.0]);
        prepared.run_block(&mut ws, 0..trials, |t| t ^ 0xBE7C, &mut stats);
        std::hint::black_box(stats);
    });
    let trials_per_sec = trials as f64 / (verify_ms / 1e3);

    // --- v2 batch-kernel throughput, same pipeline, same process. ---
    let mc_v2 = PipelineMc::new(
        CellLibrary::default(),
        VariationConfig::random_only(35.0),
        None,
    )
    .with_kernel(TrialKernel::V2);
    let prepared_v2 = PreparedPipelineMc::new(&mc_v2, &pipe);
    let mut ws_v2 = prepared_v2.workspace();
    let verify_v2_ms = median_ms(|| {
        let mut stats = PipelineBlockStats::new(pipe.stage_count(), &[150.0]);
        prepared_v2.run_block(&mut ws_v2, 0..trials, |t| t ^ 0xBE7C, &mut stats);
        std::hint::black_box(stats);
    });
    let trials_per_sec_v2 = trials as f64 / (verify_v2_ms / 1e3);

    // --- v3 wide-kernel throughput, same pipeline, same process. ---
    let mc_v3 = PipelineMc::new(
        CellLibrary::default(),
        VariationConfig::random_only(35.0),
        None,
    )
    .with_kernel(TrialKernel::V3);
    let prepared_v3 = PreparedPipelineMc::new(&mc_v3, &pipe);
    let mut ws_v3 = prepared_v3.workspace();
    let verify_v3_ms = median_ms(|| {
        let mut stats = PipelineBlockStats::new(pipe.stage_count(), &[150.0]);
        prepared_v3.run_block(&mut ws_v3, 0..trials, |t| t ^ 0xBE7C, &mut stats);
        std::hint::black_box(stats);
    });
    let trials_per_sec_v3 = trials as f64 / (verify_v3_ms / 1e3);

    // --- Pooled v3 verification: sequential fold vs the worker pool. ---
    // Bytes must match on every host; the speedup is only meaningful
    // (and only gated) when there are cores to spread over.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let pool_budget = 16_384u64;
    let pool_seed = |t: u64| counter_seed(0xBE7C, t);
    let pooled_verify = |workers: usize| {
        vardelay_engine::verify_yield_pooled(
            &prepared_v3,
            TrialPlan::plain(),
            pool_budget,
            None,
            pool_seed,
            pipe.stage_count(),
            &[150.0],
            workers,
            0,
        )
    };
    let sequential_v = pooled_verify(1);
    let parallel_v = pooled_verify(cores);
    let verify_digest = |v: &vardelay_opt::VerifiedYield| {
        (
            v.trials,
            v.stats.yield_estimate(0).value.to_bits(),
            v.stats.pipeline().mean().to_bits(),
            v.stats.pipeline().sample_sd().to_bits(),
        )
    };
    assert_eq!(
        verify_digest(&sequential_v),
        verify_digest(&parallel_v),
        "pooled verification must reproduce the sequential fold bit-for-bit"
    );
    let verify_seq_ms = median_ms(|| {
        std::hint::black_box(pooled_verify(1));
    });
    let verify_par_ms = median_ms(|| {
        std::hint::black_box(pooled_verify(cores));
    });
    let verify_parallel_speedup = verify_seq_ms / verify_par_ms;

    // --- Trial plans: variance reduction at a matched budget. ---
    // Inter-die-dominant variation, where die-level stratification and
    // QMC have the most structure to exploit: the yield estimator's
    // variance across independent replicates (distinct seeds, identical
    // budget) is the efficiency currency — VRF x means plain MC needs
    // x times the trials for the same confidence interval.
    let plans_var = VariationConfig::combined(40.0, 10.0, 0.0);
    let mc_plans = PipelineMc::new(CellLibrary::default(), plans_var, None);
    let plans_pipe = StagedPipeline::new(
        "plans",
        vec![
            inverter_chain(10, 1.0),
            inverter_chain(8, 1.0),
            inverter_chain(9, 1.0),
            inverter_chain(7, 1.0),
        ],
        LatchParams::tg_msff_70nm(),
    );
    let prepared_plans = PreparedPipelineMc::new(&mc_plans, &plans_pipe);
    let mut ws_plans = prepared_plans.workspace();
    let mut probe = PipelineBlockStats::new(plans_pipe.stage_count(), &[]);
    prepared_plans.run_block(
        &mut ws_plans,
        0..8_192,
        |t| counter_seed(0xA5ED, t),
        &mut probe,
    );
    let (mu, sd) = (probe.pipeline().mean(), probe.pipeline().sample_sd());
    let body_target = mu + Z_BODY * sd;

    let plan_budget = 1_024u64;
    let plan_replicates = 24u64;
    let mut yield_variance = |plan: Option<TrialPlan>| -> f64 {
        let mut est = vardelay_stats::RunningStats::new();
        for r in 0..plan_replicates {
            let mut stats = PipelineBlockStats::new(plans_pipe.stage_count(), &[body_target]);
            let seed_of = |t: u64| counter_seed(0xA5ED ^ (r + 1), t);
            match plan {
                None => {
                    prepared_plans.run_block(&mut ws_plans, 0..plan_budget, seed_of, &mut stats)
                }
                Some(p) => prepared_plans.run_block_plan(
                    &mut ws_plans,
                    0..plan_budget,
                    seed_of,
                    p,
                    &mut stats,
                ),
            }
            est.push(stats.yield_estimate(0).value);
        }
        est.sample_variance()
    };
    let var_plain = yield_variance(None);
    let vrf_antithetic = var_plain / yield_variance(Some(TrialPlan::of(TrialStrategy::Antithetic)));
    let vrf_stratified = var_plain / yield_variance(Some(TrialPlan::of(TrialStrategy::Stratified)));
    let vrf_sobol = var_plain / yield_variance(Some(TrialPlan::of(TrialStrategy::Sobol)));

    // --- High-sigma: blockade resolves 99.9% where plain MC cannot. ---
    // Both estimators get the same 4k-trial budget against a target in
    // the far tail. Plain MC sees a handful of failures and its
    // interval straddles the 0.999 decision line; the blockade plan's
    // reweighted tail estimate is an order of magnitude tighter and
    // pins the yield to one side of it.
    let hs_target = mu + Z_HIGH_SIGMA * sd;
    let hs_budget = 4_096u64;
    let hs_seed = |t: u64| counter_seed(0x515A, t);
    let mut plain_hs = PipelineBlockStats::new(plans_pipe.stage_count(), &[hs_target]);
    prepared_plans.run_block(&mut ws_plans, 0..hs_budget, hs_seed, &mut plain_hs);
    let plain_hs_yield = plain_hs.yield_estimate(0).value;
    let plain_hs_hw = plain_hs.yield_half_width(0);
    let mut blockade_hs =
        PipelineBlockStats::new(plans_pipe.stage_count(), &[hs_target]).with_weighted_tail();
    prepared_plans.run_block_plan(
        &mut ws_plans,
        0..hs_budget,
        hs_seed,
        TrialPlan::of(TrialStrategy::Blockade),
        &mut blockade_hs,
    );
    let blockade_hs_yield = blockade_hs.weighted_yield_estimate(0).value;
    let blockade_hs_hw = blockade_hs.yield_half_width(0);
    let resolves = |y: f64, hw: f64| y - hw > 0.999 || y + hw < 0.999;
    let plain_resolves = resolves(plain_hs_yield, plain_hs_hw);
    let blockade_resolves = resolves(blockade_hs_yield, blockade_hs_hw);

    // Hand-rendered JSON: fixed key order, no dependency on map
    // iteration, so the artifact diffs cleanly between PRs.
    let phase_block = |s: &CampaignSample| {
        format!(
            "{{\n      \"sizing\": {:.3},\n      \"criticality\": {:.3},\n      \
             \"mc_verify\": {:.3}\n    }}",
            s.sizing_ms, s.criticality_ms, s.mc_verify_ms
        )
    };
    let trial_plans_block = format!(
        "{{\n    \"budget_trials\": {plan_budget},\n    \"replicates\": {plan_replicates},\n    \
         \"vrf_antithetic\": {vrf_antithetic:.2},\n    \"vrf_stratified\": {vrf_stratified:.2},\n    \
         \"vrf_sobol\": {vrf_sobol:.2},\n    \"high_sigma\": {{\n      \"target_yield\": 0.999,\n      \
         \"budget_trials\": {hs_budget},\n      \"plain_yield\": {plain_hs_yield:.6},\n      \
         \"plain_half_width\": {plain_hs_hw:.6},\n      \"plain_resolves\": {plain_resolves},\n      \
         \"blockade_yield\": {blockade_hs_yield:.6},\n      \"blockade_half_width\": {blockade_hs_hw:.6},\n      \
         \"blockade_resolves\": {blockade_resolves}\n    }}\n  }}"
    );
    let json = format!(
        "{{\n  \"pr\": 10,\n  \"campaign_ms\": {{\n    \"{}\": {:.3},\n    \"{}\": {:.3}\n  }},\n  \
         \"campaign_phases_ms\": {{\n    \"{}\": {},\n    \"{}\": {}\n  }},\n  \
         \"result_cache\": {{\n    \"campaign_cold_ms\": {:.3},\n    \"campaign_warm_ms\": {:.3},\n    \
         \"warm_fraction\": {:.4},\n    \"hit_rate\": {:.4}\n  }},\n  \
         \"sizing\": {{\n    \"size_stage_200g_ms\": {:.4},\n    \"size_stage_200g_full_pass_ms\": {:.4},\n    \
         \"kernel_speedup\": {:.3}\n  }},\n  \"retime_probe\": {{\n    \"incremental_us\": {:.3},\n    \
         \"full_pass_us\": {:.3},\n    \"speedup\": {:.2}\n  }},\n  \"mc_verification\": {{\n    \
         \"trials_per_sec\": {:.0},\n    \"kernel_v2_trials_per_sec\": {:.0},\n    \
         \"kernel_v2_speedup\": {:.2},\n    \"kernel_v3_trials_per_sec\": {:.0},\n    \
         \"kernel_v3_over_v2\": {:.2}\n  }},\n  \"mc_verify_parallel\": {{\n    \
         \"cores\": {},\n    \"budget_trials\": {},\n    \"sequential_ms\": {:.3},\n    \
         \"parallel_ms\": {:.3},\n    \"speedup\": {:.2},\n    \"bytes_identical\": true\n  }},\n  \
         \"trial_plans\": {}\n}}",
        campaign_samples[0].0,
        campaign_samples[0].1.wall_ms,
        campaign_samples[1].0,
        campaign_samples[1].1.wall_ms,
        campaign_samples[0].0,
        phase_block(&campaign_samples[0].1),
        campaign_samples[1].0,
        phase_block(&campaign_samples[1].1),
        cache_cold_ms,
        cache_warm_ms,
        warm_fraction,
        cache_hit_rate,
        size_inc_ms,
        size_full_ms,
        size_full_ms / size_inc_ms,
        probe_inc_ms * 1e3,
        probe_full_ms * 1e3,
        probe_full_ms / probe_inc_ms,
        trials_per_sec,
        trials_per_sec_v2,
        trials_per_sec_v2 / trials_per_sec,
        trials_per_sec_v3,
        trials_per_sec_v3 / trials_per_sec_v2,
        cores,
        pool_budget,
        verify_seq_ms,
        verify_par_ms,
        verify_parallel_speedup,
        trial_plans_block,
    );
    std::fs::write(&out_path, &json).expect("write summary");
    println!("{json}");
    println!();
    println!("wrote {out_path}");

    // Unconditional gate: warm reruns must stay an order cheaper than
    // cold ones, or the cache stopped earning its keep.
    let warm_ok = warm_fraction <= WARM_FRACTION_CEILING;
    println!();
    println!(
        "gate result_cache.warm_fraction: current {warm_fraction:.4} vs ceiling \
         {WARM_FRACTION_CEILING} — {}",
        if warm_ok { "ok" } else { "TOO SLOW" }
    );
    if !warm_ok {
        eprintln!("warm cached rerun cost more than {WARM_FRACTION_CEILING}x the cold run");
        std::process::exit(1);
    }

    // Unconditional trial-plan gates: the variance-reduction headline
    // (≥4x fewer trials at matched confidence for the die-structured
    // plans) and the high-sigma resolution demo. Seed-deterministic
    // same-process ratios — no baseline needed.
    let mut plans_ok = true;
    for (name, vrf) in [
        ("trial_plans.vrf_stratified", vrf_stratified),
        ("trial_plans.vrf_sobol", vrf_sobol),
    ] {
        let ok = vrf >= PLAN_VRF_FLOOR;
        plans_ok &= ok;
        println!(
            "gate {name}: current {vrf:.2} vs floor {PLAN_VRF_FLOOR} — {}",
            if ok { "ok" } else { "TOO LITTLE REDUCTION" }
        );
    }
    let hs_ok = blockade_resolves && !plain_resolves && blockade_hs_hw < plain_hs_hw;
    println!(
        "gate trial_plans.high_sigma: blockade resolves 0.999 (hw {blockade_hs_hw:.6}) while \
         plain does not (hw {plain_hs_hw:.6}) — {}",
        if hs_ok { "ok" } else { "FAILED" }
    );
    if !(plans_ok && hs_ok) {
        eprintln!("trial-plan efficiency gates failed");
        std::process::exit(1);
    }

    // Unconditional v3 gate: the wide kernel must beat the batch kernel
    // in the same process, single-threaded — lane-major layout has to
    // pay for itself before any pooling enters the picture.
    let v3_over_v2 = trials_per_sec_v3 / trials_per_sec_v2;
    let v3_ok = v3_over_v2 >= V3_OVER_V2_FLOOR;
    println!(
        "gate mc_verification.kernel_v3_over_v2: current {v3_over_v2:.2} vs floor \
         {V3_OVER_V2_FLOOR} — {}",
        if v3_ok { "ok" } else { "TOO SLOW" }
    );
    if !v3_ok {
        eprintln!("v3 kernel did not clear {V3_OVER_V2_FLOOR}x the v2 rate");
        std::process::exit(1);
    }

    // Pooled-verification speedup gate: only meaningful where the pool
    // has cores to spread over (byte-identity was already asserted
    // unconditionally above).
    if cores >= 4 {
        let par_ok = verify_parallel_speedup >= MC_VERIFY_PARALLEL_FLOOR;
        println!(
            "gate mc_verify_parallel.speedup: current {verify_parallel_speedup:.2} vs floor \
             {MC_VERIFY_PARALLEL_FLOOR} ({cores} cores) — {}",
            if par_ok { "ok" } else { "TOO SLOW" }
        );
        if !par_ok {
            eprintln!("pooled v3 verification did not clear {MC_VERIFY_PARALLEL_FLOOR}x");
            std::process::exit(1);
        }
    } else {
        println!(
            "gate mc_verify_parallel.speedup: skipped ({cores} core(s) — no hardware to \
             parallelize over; bytes_identical asserted)"
        );
    }

    // Regression gate against the checked-in previous BENCH file.
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline '{path}': {e}"));
        let base: serde::Value =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("baseline '{path}': {e}"));
        println!();
        let speedup_ok = gate(
            "sizing.kernel_speedup",
            size_full_ms / size_inc_ms,
            metric(&base, &["sizing", "kernel_speedup"]),
        );
        let mc_ok = gate(
            "mc_verification.trials_per_sec",
            trials_per_sec,
            metric(&base, &["mc_verification", "trials_per_sec"]),
        );
        // Forward gate: the batch kernel must clear 3x the baseline's
        // v1 rate. The baseline rate and both current rates ran on
        // hosts of the same class; the generous margin between the
        // floor and the measured ratio absorbs residual host noise.
        let base_v1 = metric(&base, &["mc_verification", "trials_per_sec"]);
        let v2_floor = V2_SPEEDUP_FLOOR * base_v1;
        let v2_ok = trials_per_sec_v2 >= v2_floor;
        println!(
            "gate mc_verification.kernel_v2_trials_per_sec: current {trials_per_sec_v2:.0} vs \
             floor {v2_floor:.0} ({V2_SPEEDUP_FLOOR}x baseline v1) — {}",
            if v2_ok { "ok" } else { "TOO SLOW" }
        );
        if !(speedup_ok && mc_ok && v2_ok) {
            eprintln!(
                "performance regressed >{:.0}% vs {path}",
                100.0 * REGRESSION_TOLERANCE
            );
            std::process::exit(1);
        }
    }
}
