//! Table II: ensuring an 80% pipeline yield target with a small area
//! penalty on the 4-stage ISCAS85 pipeline (c3540, c2670, c1908, c432).
//!
//! Setup (matching the paper's): the target delay is placed where the
//! biggest stage (c3540) *cannot* reach the conventional per-stage yield
//! allocation of `0.80^(1/4) = 94.6%` — its sizing frontier tops out in
//! the mid-80s — so the individually-optimized flow under-yields at the
//! pipeline level. The Fig. 9 global flow then compensates by buying
//! extra yield in the stages where it is cheap (low `R_i`).
//!
//! Run: `cargo run --release -p vardelay-bench --bin table2`

use vardelay_bench::render::{pct, TextTable};
use vardelay_bench::{library, to_core_pipeline};
use vardelay_circuit::generators::iscas;
use vardelay_circuit::{LatchParams, StagedPipeline};
use vardelay_opt::sizing::{SizingConfig, StatisticalSizer};
use vardelay_opt::{GlobalPipelineOptimizer, OptimizationGoal};
use vardelay_process::VariationConfig;
use vardelay_ssta::SstaEngine;
use vardelay_stats::inv_cap_phi;

fn main() {
    let engine = SstaEngine::new(library(), VariationConfig::random_only(35.0), None);
    let sizer = StatisticalSizer::new(engine.clone(), SizingConfig::default());
    let opt = GlobalPipelineOptimizer::new(sizer).with_rounds(4);

    let pipeline = StagedPipeline::new(
        "iscas4",
        iscas::table2_stages(),
        LatchParams::tg_msff_70nm(),
    );
    let yield_target = 0.80;
    let latch = pipeline.latch().overhead_ps();

    // Pass 1: provisional individual optimization to locate the slowest
    // stage's sizing frontier.
    let t0 = engine.analyze_pipeline(&pipeline);
    let slow_idx = (0..pipeline.stage_count())
        .max_by(|&a, &b| {
            t0.stage_delays[a]
                .mean()
                .partial_cmp(&t0.stage_delays[b].mean())
                .expect("finite")
        })
        .expect("non-empty");
    // Fixed-point search: tighten the target toward the point where the
    // frontier stage's achievable marginal yield is ~86% — below the
    // 94.6% allocation, like the paper's c3540 (86.3%). The greedy sizer
    // is path-dependent, so each re-run can push the frontier slightly;
    // iterate until the achieved yield stops exceeding ~90%.
    let mut target = t0.stage_delays[slow_idx].mean() * 0.62;
    let mut indiv = opt.optimize_individually(&pipeline, target, yield_target);
    let mut t_ind = engine.analyze_pipeline(&indiv);
    for _ in 0..4 {
        let (mu_b, sd_b) = (
            t_ind.stage_delays[slow_idx].mean() - latch,
            t_ind.stage_delays[slow_idx].sd(),
        );
        target = mu_b + latch + inv_cap_phi(0.86) * sd_b;
        // Warm-start from the previous baseline so the conventional flow
        // gets the same optimization maturity as the global flow.
        indiv = opt.optimize_individually(&indiv, target, yield_target);
        t_ind = engine.analyze_pipeline(&indiv);
        let y_slow = t_ind.stage_delays[slow_idx].cdf(target);
        if (0.80..=0.90).contains(&y_slow) {
            break;
        }
    }

    println!("Table II — ensuring Y_TARGET = 80% with small area penalty");
    println!("4-stage ISCAS85 pipeline, target delay {target:.0} ps\n");
    let y_ind = to_core_pipeline(&t_ind).yield_at(target);
    let a_ind: f64 = indiv.total_area();

    // Proposed: Fig. 9 global flow, warm-started from the baseline (the
    // algorithm's stated input is "the complete pipelined design with
    // individual stages optimized").
    let (glob, report) = opt.optimize(&indiv, target, yield_target, OptimizationGoal::EnsureYield);
    let t_glob = engine.analyze_pipeline(&glob);
    let a_glob: f64 = glob.total_area();

    let mut t = TextTable::new([
        "Stage logic",
        "Indiv area %",
        "Indiv yield %",
        "Proposed area %",
        "Proposed yield %",
        "R slope",
    ]);
    for (i, s) in pipeline.stages().iter().enumerate() {
        t.row([
            s.name().to_owned(),
            format!("{:.1}", 100.0 * indiv.stage_areas()[i] / a_ind),
            pct(t_ind.stage_delays[i].cdf(target)),
            format!("{:.1}", 100.0 * glob.stage_areas()[i] / a_ind),
            pct(t_glob.stage_delays[i].cdf(target)),
            format!("{:.2}", report.stages[i].slope),
        ]);
    }
    t.row([
        "Pipeline:".to_owned(),
        "100.0".to_owned(),
        pct(y_ind),
        format!("{:.1}", 100.0 * a_glob / a_ind),
        pct(report.pipeline_yield_after),
        "-".to_owned(),
    ]);
    println!("{}", t.render());

    println!(
        "yield: {} -> {} (target {}), area {:+.1}%",
        pct(y_ind),
        pct(report.pipeline_yield_after),
        pct(yield_target),
        100.0 * (a_glob - a_ind) / a_ind
    );
    println!("\nshape check vs paper's Table II: the conventional flow misses the pipeline");
    println!("yield target because the frontier stage cannot reach its allocation; the global");
    println!("flow reaches the target (paper: 73.9% -> 80.5%, +9 points) at a small area");
    println!("change (paper: +2%).");
}
