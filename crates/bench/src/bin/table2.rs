//! Table II: ensuring an 80% pipeline yield target with a small area
//! penalty on the 4-stage ISCAS85 pipeline (c3540, c2670, c1908, c432).
//!
//! Setup (matching the paper's): the target delay is placed where the
//! biggest stage (c3540) *cannot* reach the conventional per-stage yield
//! allocation of `0.80^(1/4) = 94.6%` — the frontier-quantile policy
//! pins it at the 86% quantile, the paper's 86.3% situation. In the
//! paper the individually-optimized flow then under-yields at the
//! pipeline level and the Fig. 9 global flow compensates by buying
//! extra yield in the stages where it is cheap (low `R_i`); see the
//! shape-check footer for how far our greedy sizer reproduces that
//! contrast on these profiles.
//!
//! Since the engine grew optimization campaigns, this binary is a thin
//! campaign driver: the frontier search, the individually-optimized
//! baseline, the global flow and the Monte-Carlo "actual yield"
//! cross-check (20k trials) all run through `vardelay_engine::optimize`
//! — the same code path as `vardelay optimize <spec.json>`.
//!
//! Run: `cargo run --release -p vardelay-bench --bin table2`

use vardelay_bench::iscas_pipeline_spec;
use vardelay_bench::render::{pct, TextTable};
use vardelay_engine::optimize::{OptimizationCampaign, OptimizeSpec, YieldBackendSpec};
use vardelay_engine::{run_campaign, KernelSpec, SweepOptions, TrialPlanSpec, VariationSpec};
use vardelay_opt::{OptimizationGoal, TargetDelayPolicy};

fn main() {
    let campaign = OptimizationCampaign {
        name: "table2".to_owned(),
        seed: 0x7AB2,
        runs: vec![OptimizeSpec {
            label: "iscas4 ensure 80%".to_owned(),
            pipeline: iscas_pipeline_spec(),
            variation: VariationSpec::RandomOnly { sigma_mv: 35.0 },
            yield_target: 0.80,
            target_delay: TargetDelayPolicy::table2(),
            goal: OptimizationGoal::EnsureYield,
            rounds: 4,
            yield_backend: YieldBackendSpec::Analytic,
            kernel: KernelSpec::default(),
            eval_trials: 2_048,
            verify_trials: 20_000,
            verify_plan: TrialPlanSpec::default(),
        }],
        grid: None,
    };
    let result = run_campaign(&campaign, &SweepOptions::default()).expect("campaign is valid");
    let run = &result.runs[0];
    let report = &run.report;
    let target = run.target_ps;
    let a_ind = report.pipeline_area_before;

    println!("Table II — ensuring Y_TARGET = 80% with small area penalty");
    println!("4-stage ISCAS85 pipeline, target delay {target:.0} ps\n");

    let mut t = TextTable::new([
        "Stage logic",
        "Indiv area %",
        "Indiv yield %",
        "Proposed area %",
        "Proposed yield %",
        "R slope",
    ]);
    for s in &report.stages {
        t.row([
            s.name.clone(),
            format!("{:.1}", 100.0 * s.area_before / a_ind),
            pct(s.yield_before),
            format!("{:.1}", 100.0 * s.area_after / a_ind),
            pct(s.yield_after),
            format!("{:.2}", s.slope),
        ]);
    }
    t.row([
        "Pipeline:".to_owned(),
        "100.0".to_owned(),
        pct(run.individual.analytic_yield),
        format!("{:.1}", 100.0 * report.pipeline_area_after / a_ind),
        pct(report.pipeline_yield_after),
        "-".to_owned(),
    ]);
    println!("{}", t.render());

    println!(
        "yield: {} -> {} (target {}), area {:+.1}%",
        pct(run.individual.analytic_yield),
        pct(report.pipeline_yield_after),
        pct(report.yield_target),
        100.0 * report.area_delta_fraction()
    );
    if let (Some(mi), Some(mg)) = (&run.individual.mc, &run.mc) {
        println!(
            "actual (MC, {} trials): {} -> {}  [model on measured moments: {} -> {}]",
            mg.trials,
            pct(mi.value),
            pct(mg.value),
            mi.model_from_mc.map_or("-".to_owned(), pct),
            mg.model_from_mc.map_or("-".to_owned(), pct),
        );
    }
    println!("\nshape check vs paper's Table II: the target sits where the frontier stage");
    println!("(c3540) reaches only the 86% quantile — below its 94.6% allocation, the");
    println!("paper's 86.3% setup. Whether the conventional flow then under-yields depends");
    println!("on how far the remaining stages overshoot their allocation (our greedy sizer");
    println!("overshoots on these profiles; when it does, the global flow keeps the input");
    println!("rather than spending area). The classic failure->fix contrast (paper: 73.9%");
    println!("-> 80.5% at +2% area) is pinned by the campaign golden test on a chain");
    println!("pipeline, crates/engine/tests/optimize.rs.");
}
