//! Fig. 4: range of permissible mean and standard deviation for each stage
//! to meet a target yield.
//!
//! Prints, over a sweep of stage means, the σ ceilings from the relaxed
//! bound (eq. 11) and the equality bounds (eq. 12) for two stage counts,
//! plus the realizable inverter-chain band (eq. 13) between minimum- and
//! maximum-size devices.
//!
//! Run: `cargo run --release -p vardelay-bench --bin fig4`

use vardelay_bench::library;
use vardelay_bench::render::xy_table;
use vardelay_core::design_space::{DesignSpace, RealizableCurve, RealizableRegion};
use vardelay_process::VariationConfig;
use vardelay_ssta::SstaEngine;

fn main() {
    let target = 100.0; // ps
    let yield_target = 0.90;
    let (n1, n2) = (5usize, 10usize);
    let ds = DesignSpace::new(target, yield_target).expect("valid yield");

    println!("Fig. 4 — permissible (mu, sigma) design space per stage");
    println!("target delay = {target} ps, pipeline yield = {}%\n", yield_target * 100.0);

    // Realizable curves from the actual library: a minimum-size inverter
    // and a 4x inverter, each FO4-loaded, under random intra variation.
    let engine = SstaEngine::new(library(), VariationConfig::random_only(35.0), None);
    let unit = |size: f64| {
        let chain = vardelay_circuit::generators::inverter_chain(1, size);
        let d = engine.stage_delay(&chain, 0);
        (d.mean(), d.sd())
    };
    let (mu_min, sd_min) = unit(1.0); // min size: slower, more variable
    let (mu_max, sd_max) = unit(4.0);
    let region = RealizableRegion {
        min_size: RealizableCurve::new(mu_min, sd_min),
        max_size: RealizableCurve::new(mu_max, sd_max),
        min_depth: 4,
    };

    let mus: Vec<f64> = (1..=12).map(|i| f64::from(i) * 8.0).collect();
    let relaxed: Vec<f64> = mus.iter().map(|&m| ds.relaxed_sigma_bound(m)).collect();
    let eq_n1: Vec<f64> = mus.iter().map(|&m| ds.equality_sigma_bound(m, n1)).collect();
    let eq_n2: Vec<f64> = mus.iter().map(|&m| ds.equality_sigma_bound(m, n2)).collect();
    let real_hi: Vec<f64> = mus.iter().map(|&m| region.min_size.sigma_at(m)).collect();
    let real_lo: Vec<f64> = mus.iter().map(|&m| region.max_size.sigma_at(m)).collect();

    println!(
        "{}",
        xy_table(
            "stage mu (ps)",
            &mus,
            &[
                ("relaxed bound (eq.11)", relaxed),
                (&format!("equality Ns={n1}"), eq_n1),
                (&format!("equality Ns={n2}"), eq_n2),
                ("realizable upper (min-size)", real_hi),
                ("realizable lower (max-size)", real_lo),
            ],
            3,
        )
    );

    println!("unit inverter: min-size (mu {mu_min:.2} ps, sigma {sd_min:.3} ps), 4x ({mu_max:.2} ps, {sd_max:.3} ps)");
    println!("minimum logic depth floor: mu >= {:.1} ps", 4.0 * mu_max.min(mu_min));
    println!("\nshape check vs paper: equality bounds tighten with Ns and all bounds slope");
    println!("down-right (larger mu leaves less sigma budget); the realizable band rises as");
    println!("sqrt(mu) and intersects the bounds to give the feasible design region.");

    // A few spot checks of admissibility, as the figure's shaded region.
    for (mu, sd) in [(40.0, 2.0), (80.0, 2.0), (95.0, 4.0)] {
        println!(
            "(mu={mu:.0}, sigma={sd:.1}) admissible at Ns={n1}? {}  realizable? {}",
            ds.is_admissible(mu, sd, n1),
            region.contains(mu, sd)
        );
    }
}
