//! Fig. 4: range of permissible mean and standard deviation for each stage
//! to meet a target yield.
//!
//! Prints, over a sweep of stage means, the σ ceilings from the relaxed
//! bound (eq. 11) and the equality bounds (eq. 12) for two stage counts,
//! plus the realizable inverter-chain band (eq. 13) between minimum- and
//! maximum-size devices — all tabulated by the engine's declarative
//! design-space sweep instead of a hand-rolled loop.
//!
//! Run: `cargo run --release -p vardelay-bench --bin fig4`

use vardelay_bench::render::xy_table;
use vardelay_engine::{design_space, DesignSpaceSpec};

fn main() {
    let spec = DesignSpaceSpec::fig4();
    let res = design_space(&spec).expect("valid spec");
    let (n1, n2) = (spec.stage_counts[0], spec.stage_counts[1]);

    println!("Fig. 4 — permissible (mu, sigma) design space per stage");
    println!(
        "target delay = {} ps, pipeline yield = {}%\n",
        spec.target_ps,
        spec.yield_target * 100.0
    );

    let mus: Vec<f64> = res.rows.iter().map(|r| r.mu_ps).collect();
    let relaxed: Vec<f64> = res.rows.iter().map(|r| r.relaxed_sigma_ps).collect();
    let eq_n1: Vec<f64> = res.rows.iter().map(|r| r.equality_sigma_ps[0]).collect();
    let eq_n2: Vec<f64> = res.rows.iter().map(|r| r.equality_sigma_ps[1]).collect();
    let real_hi: Vec<f64> = res.rows.iter().map(|r| r.realizable_hi_ps).collect();
    let real_lo: Vec<f64> = res.rows.iter().map(|r| r.realizable_lo_ps).collect();

    println!(
        "{}",
        xy_table(
            "stage mu (ps)",
            &mus,
            &[
                ("relaxed bound (eq.11)", relaxed),
                (&format!("equality Ns={n1}"), eq_n1),
                (&format!("equality Ns={n2}"), eq_n2),
                ("realizable upper (min-size)", real_hi),
                ("realizable lower (max-size)", real_lo),
            ],
            3,
        )
    );

    let (mu_min, sd_min) = res.min_size_gate;
    let (mu_max, sd_max) = res.max_size_gate;
    println!("unit inverter: min-size (mu {mu_min:.2} ps, sigma {sd_min:.3} ps), {}x ({mu_max:.2} ps, {sd_max:.3} ps)", spec.max_size);
    println!("minimum logic depth floor: mu >= {:.1} ps", res.mu_floor_ps);
    println!("\nshape check vs paper: equality bounds tighten with Ns and all bounds slope");
    println!("down-right (larger mu leaves less sigma budget); the realizable band rises as");
    println!("sqrt(mu) and intersects the bounds to give the feasible design region.");

    // A few spot checks of admissibility, as the figure's shaded region.
    let ds = vardelay_core::design_space::DesignSpace::new(spec.target_ps, spec.yield_target)
        .expect("valid yield");
    let region = res.region();
    for (mu, sd) in [(40.0, 2.0), (80.0, 2.0), (95.0, 4.0)] {
        println!(
            "(mu={mu:.0}, sigma={sd:.1}) admissible at Ns={n1}? {}  realizable? {}",
            ds.is_admissible(mu, sd, n1),
            region.contains(mu, sd)
        );
    }
}
