//! Ablation studies of the paper's design choices.
//!
//! 1. **Clark fold ordering** (§2.4): the paper orders stages by
//!    increasing mean before the pairwise recursion to minimize modeling
//!    error. Ablate: sorted vs reversed vs interleaved orderings vs a
//!    multivariate-normal Monte-Carlo reference.
//! 2. **Imbalance receiver choice** (eq. 14): the heuristic speeds up the
//!    stage where delay is cheap (R < 1). Ablate: give the freed area to
//!    the *most expensive* stage instead.
//! 3. **Guard-band refresh** (Fig. 9 steps 6–7): the sizer re-derives the
//!    deterministic band from fresh statistics each pass. Ablate: a single
//!    pass with a stale band.
//!
//! Run: `cargo run --release -p vardelay-bench --bin ablations`

use rand::rngs::StdRng;
use rand::SeedableRng;
use vardelay_bench::library;
use vardelay_bench::render::{pct, TextTable};
use vardelay_circuit::generators::{random_logic, RandomLogicConfig};
use vardelay_core::balance::{balanced_pipeline, best_point, imbalance_sweep};
use vardelay_core::yield_model::stage_yield_target;
use vardelay_opt::sizing::{SizingConfig, StatisticalSizer};
use vardelay_process::VariationConfig;
use vardelay_ssta::SstaEngine;
use vardelay_stats::{
    inv_cap_phi, max_of_with_order, CorrelationMatrix, MultivariateNormal, Normal, RunningStats,
};

fn ablation_ordering() {
    println!("--- Ablation 1: Clark fold ordering (paper: sort by increasing mean) ---");
    let ns = 10;
    let stages: Vec<Normal> = (0..ns)
        .map(|i| Normal::new(200.0 + 3.0 * i as f64, 6.0).expect("valid"))
        .collect();
    let corr = CorrelationMatrix::uniform(ns, 0.2).expect("valid rho");

    // MC reference.
    let mvn = MultivariateNormal::from_correlation(
        &stages.iter().map(Normal::mean).collect::<Vec<_>>(),
        &stages.iter().map(Normal::sd).collect::<Vec<_>>(),
        &corr,
    )
    .expect("PSD");
    let mut rng = StdRng::seed_from_u64(0xAB1A);
    let mc: RunningStats = mvn.sample_max_n(&mut rng, 500_000).into_iter().collect();

    let sorted: Vec<usize> = (0..ns).collect(); // means already ascending
    let reversed: Vec<usize> = (0..ns).rev().collect();
    let interleaved: Vec<usize> = (0..ns / 2).flat_map(|i| [i, ns - 1 - i]).collect();

    let mut t = TextTable::new(["ordering", "mu err %", "sigma err %"]);
    for (name, order) in [
        ("increasing mean (paper)", &sorted),
        ("decreasing mean", &reversed),
        ("interleaved", &interleaved),
    ] {
        let m = max_of_with_order(&stages, &corr, order);
        t.row([
            name.to_owned(),
            format!("{:.4}", 100.0 * (m.mean() - mc.mean()).abs() / mc.mean()),
            format!(
                "{:.3}",
                100.0 * (m.sd() - mc.sample_sd()).abs() / mc.sample_sd()
            ),
        ]);
    }
    println!("{}", t.render());
}

fn ablation_receiver() {
    println!("--- Ablation 2: imbalance receiver choice (eq. 14: pick R < 1) ---");
    let target = 179.0;
    let sigma = 2.0;
    let y_stage = stage_yield_target(0.80, 3);
    let mu = target - inv_cap_phi(y_stage) * sigma;
    let base = balanced_pipeline(3, mu, sigma).expect("valid");
    let slopes = [1.8, 0.5, 1.8];
    let deltas: Vec<f64> = (0..80).map(|i| f64::from(i) * 0.05).collect();

    let mut t = TextTable::new(["receiver", "best yield %", "balanced %"]);
    // Heuristic choice: the cheap stage (R = 0.5).
    let good = imbalance_sweep(&base, &[0, 2], 1, &slopes, target, &deltas).expect("sweep");
    // Wrong choice: an expensive stage (R = 1.8).
    let bad = imbalance_sweep(&base, &[1, 2], 0, &slopes, target, &deltas).expect("sweep");
    let balanced = pct(base.yield_at(target));
    t.row([
        "stage 1, R=0.5 (heuristic)".to_owned(),
        pct(best_point(&good).yield_value),
        balanced.clone(),
    ]);
    t.row([
        "stage 0, R=1.8 (ablated)".to_owned(),
        pct(best_point(&bad).yield_value),
        balanced,
    ]);
    println!("{}", t.render());
}

fn ablation_guard_band() {
    println!("--- Ablation 3: guard-band refresh in the statistical sizer ---");
    let engine = SstaEngine::new(library(), VariationConfig::random_only(35.0), None);
    let stage = random_logic(&RandomLogicConfig {
        name: "ab3".into(),
        inputs: 20,
        gates: 180,
        depth: 13,
        outputs: 10,
        seed: 99,
    });
    let d0 = engine.stage_delay(&stage, 0);
    let target = d0.mean() * 0.93;

    let mut t = TextTable::new(["config", "met", "area", "stat delay (ps)"]);
    for (name, passes) in [("1 pass (stale band)", 1usize), ("3 passes (paper)", 3)] {
        let sizer = StatisticalSizer::new(
            engine.clone(),
            SizingConfig {
                outer_passes: passes,
                ..SizingConfig::default()
            },
        );
        let r = sizer.size_stage(&stage, 0, target, 0.9);
        t.row([
            name.to_owned(),
            r.met.to_string(),
            format!("{:.1}", r.area),
            format!("{:.2}", r.stat_delay_ps),
        ]);
    }
    println!("{}", t.render());
}

fn main() {
    println!("Ablations of the paper's design choices\n");
    ablation_ordering();
    ablation_receiver();
    ablation_guard_band();
}
