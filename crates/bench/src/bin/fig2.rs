//! Fig. 2: delay distribution of an inverter-chain pipeline under process
//! variation — analytical model vs Monte-Carlo.
//!
//! (a) only random intra-die variation, (b) only inter-die variation,
//! (c) inter- and intra-die with both random and systematic components.
//!
//! Run: `cargo run --release -p vardelay-bench --bin fig2`

use vardelay_bench::render::histogram_vs_normal;
use vardelay_bench::{analytic_delay, inverter_pipeline, mc_delay, Scenario};

fn main() {
    let trials = 20_000;
    // The paper's caption uses a 12-stage, logic-depth-10 chain.
    let pipeline = inverter_pipeline(12, 10);
    println!("Fig. 2 — delay distribution of a 12-stage inverter-chain pipeline");
    println!("(stage logic depth = 10), analytical model vs {trials}-trial Monte-Carlo\n");

    for (panel, scenario) in [
        ("(a)", Scenario::IntraRandomOnly),
        ("(b)", Scenario::InterOnly),
        ("(c)", Scenario::Combined),
    ] {
        let analytic = analytic_delay(scenario, &pipeline);
        let mc = mc_delay(scenario, &pipeline, trials, 0xF162);
        let hist = mc.pipeline.histogram(28);
        println!("--- Fig. 2{panel}: {} ---", scenario.label());
        println!(
            "analytical: mu = {:.2} ps, sigma = {:.2} ps | Monte-Carlo: mu = {:.2} ps, sigma = {:.2} ps",
            analytic.mean(),
            analytic.sd(),
            mc.pipeline.mean(),
            mc.pipeline.sd()
        );
        println!(
            "errors: mean {:.3}%, sigma {:.2}% | MC skewness {:+.3} (Gaussian = 0; the max of \
             independent stages is right-skewed, which is the model's error source)\n",
            100.0 * (analytic.mean() - mc.pipeline.mean()).abs() / mc.pipeline.mean(),
            100.0 * (analytic.sd() - mc.pipeline.sd()).abs() / mc.pipeline.sd(),
            mc.pipeline.stats().skewness()
        );
        println!("{}", histogram_vs_normal(&hist, &analytic, 50));
    }
}
