//! Fig. 2: delay distribution of an inverter-chain pipeline under process
//! variation — analytical model vs Monte-Carlo.
//!
//! (a) only random intra-die variation, (b) only inter-die variation,
//! (c) inter- and intra-die with both random and systematic components.
//!
//! The three panels are one declarative [`Sweep`] on the engine's
//! **netlist backend**: gate-level Monte-Carlo on the zero-allocation
//! prepared path, with the delay histograms streamed through the block
//! accumulators (`histogram_bins`) instead of retained samples — the
//! analytic curve comes from the same result's closed-form summary.
//!
//! Run: `cargo run --release -p vardelay-bench --bin fig2`

use vardelay_bench::render::histogram_vs_normal;
use vardelay_engine::{
    run_sweep, BackendSpec, KernelSpec, LatchSpec, PipelineSpec, Scenario, Sweep, SweepOptions,
    TrialPlanSpec, VariationSpec,
};
use vardelay_stats::Normal;

fn main() {
    let trials = 20_000;
    // The paper's caption uses a 12-stage, logic-depth-10 chain.
    let pipeline = PipelineSpec::InverterGrid {
        stages: 12,
        depth: 10,
        size: 1.0,
        latch: LatchSpec::TgMsff70nm,
    };
    let panels: [(&str, VariationSpec); 3] = [
        (
            "(a) random intra-die only",
            VariationSpec::RandomOnly { sigma_mv: 35.0 },
        ),
        (
            "(b) inter-die only",
            VariationSpec::InterOnly { sigma_mv: 40.0 },
        ),
        (
            "(c) inter + intra (random + systematic)",
            VariationSpec::Combined {
                inter_mv: 20.0,
                random_mv: 35.0,
                systematic_mv: 15.0,
            },
        ),
    ];
    let sweep = Sweep {
        name: "fig2".to_owned(),
        seed: 0xF162,
        scenarios: panels
            .iter()
            .map(|(label, variation)| Scenario {
                label: (*label).to_owned(),
                pipeline: pipeline.clone(),
                variation: *variation,
                trials,
                trial_plan: TrialPlanSpec::default(),
                yield_targets: vec![],
                auto_target_sigmas: vec![],
                backend: BackendSpec::Netlist,
                kernel: KernelSpec::default(),
                histogram_bins: 28,
            })
            .collect(),
        grid: None,
    };

    println!("Fig. 2 — delay distribution of a 12-stage inverter-chain pipeline");
    println!("(stage logic depth = 10), analytical model vs {trials}-trial Monte-Carlo");
    println!("(engine netlist backend, histograms streamed through block stats)\n");

    let result = run_sweep(&sweep, &SweepOptions::default()).expect("valid spec");
    for s in &result.scenarios {
        let mc = s.mc.as_ref().expect("trials requested");
        let hist = mc.histogram.as_ref().expect("histogram requested");
        let analytic = Normal::new(s.analytic.mean_ps, s.analytic.sd_ps).expect("valid model");
        println!("--- Fig. 2{} ---", s.label);
        println!(
            "analytical: mu = {:.2} ps, sigma = {:.2} ps | Monte-Carlo: mu = {:.2} ps, sigma = {:.2} ps",
            s.analytic.mean_ps, s.analytic.sd_ps, mc.mean_ps, mc.sd_ps
        );
        println!(
            "errors: mean {:.3}%, sigma {:.2}% | MC skewness {:+.3} (Gaussian = 0; the max of \
             independent stages is right-skewed, which is the model's error source)\n",
            100.0 * (s.analytic.mean_ps - mc.mean_ps).abs() / mc.mean_ps,
            100.0 * (s.analytic.sd_ps - mc.sd_ps).abs() / mc.sd_ps,
            mc.skewness
        );
        println!("{}", histogram_vs_normal(hist, &analytic, 50));
    }
}
