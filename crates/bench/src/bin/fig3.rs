//! Fig. 3: trend in modeling error with (a) the number of pipeline stages
//! and (b) the stage-delay correlation coefficient.
//!
//! The Clark recursion re-Gaussianizes every pairwise max, so its error
//! grows with the number of folds and with correlation. The reference is a
//! large multivariate-normal Monte-Carlo of the exact max — here run as
//! one declarative moment-form [`Sweep`] through the parallel engine, so
//! every point's model-vs-MC delta comes out of a single `SweepResult`.
//!
//! Run: `cargo run --release -p vardelay-bench --bin fig3`

use vardelay_bench::render::xy_table;
use vardelay_engine::{
    run_sweep, BackendSpec, KernelSpec, PipelineSpec, Scenario, StageMoments, Sweep, SweepOptions,
    TrialPlanSpec, VariationSpec,
};

/// A moment-form scenario: `ns` slightly staggered stages at correlation
/// `rho`, like real stages.
fn scenario(ns: usize, rho: f64, trials: u64) -> Scenario {
    Scenario {
        label: format!("ns{ns} rho{rho}"),
        pipeline: PipelineSpec::Moments {
            stages: (0..ns)
                .map(|i| StageMoments {
                    mu_ps: 200.0 + (i as f64) * 0.8,
                    sigma_ps: 4.0,
                })
                .collect(),
            rho,
        },
        variation: VariationSpec::Nominal,
        trials,
        trial_plan: TrialPlanSpec::default(),
        yield_targets: vec![],
        auto_target_sigmas: vec![],
        backend: BackendSpec::Pipeline,
        kernel: KernelSpec::default(),
        histogram_bins: 0,
    }
}

fn main() {
    let trials = 400_000;
    println!("Fig. 3 — modeling error of the Clark-based pipeline delay model");
    println!("(moment-form scenarios through the parallel sweep engine)\n");

    let ns_axis: Vec<usize> = vec![2, 4, 6, 8, 12, 16, 20, 25, 30];
    let rhos = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    // Panel (b)'s rho = 0.0 point IS panel (a)'s ns = 8 point — reuse
    // it instead of burning 400k duplicate trials.
    let ns8 = ns_axis.iter().position(|&n| n == 8).expect("axis has 8");
    let extra_rhos: Vec<f64> = rhos.iter().copied().filter(|&r| r != 0.0).collect();
    let sweep = Sweep {
        name: "fig3".to_owned(),
        seed: 0xF163,
        scenarios: ns_axis
            .iter()
            .map(|&ns| scenario(ns, 0.0, trials))
            .chain(extra_rhos.iter().map(|&rho| scenario(8, rho, trials)))
            .collect(),
        grid: None,
    };
    let result = run_sweep(&sweep, &SweepOptions::default()).expect("valid spec");
    let errors = |i: usize| {
        let s = &result.scenarios[i];
        let mc = s.mc.as_ref().expect("trials requested");
        (
            100.0 * (s.analytic.mean_ps - mc.mean_ps).abs() / mc.mean_ps,
            100.0 * (s.analytic.sd_ps - mc.sd_ps).abs() / mc.sd_ps,
        )
    };

    // (a) vs number of stages at rho = 0.
    let (mut mean_err, mut sd_err) = (Vec::new(), Vec::new());
    for i in 0..ns_axis.len() {
        let (me, se) = errors(i);
        mean_err.push(me);
        sd_err.push(se);
    }
    println!("--- Fig. 3(a): error vs number of stages (independent stages) ---");
    println!(
        "{}",
        xy_table(
            "stages",
            &ns_axis.iter().map(|&n| n as f64).collect::<Vec<_>>(),
            &[
                ("% error in mean", mean_err.clone()),
                ("% error in std dev", sd_err.clone()),
            ],
            3,
        )
    );
    println!(
        "paper envelope: mean error < 0.2%, sigma error < 5% — measured max: mean {:.3}%, sigma {:.2}%\n",
        mean_err.iter().copied().fold(0.0, f64::max),
        sd_err.iter().copied().fold(0.0, f64::max)
    );

    // (b) vs correlation coefficient at ns = 8.
    let (mut mean_err_r, mut sd_err_r) = (Vec::new(), Vec::new());
    for &rho in &rhos {
        let i = if rho == 0.0 {
            ns8
        } else {
            ns_axis.len() + extra_rhos.iter().position(|&r| r == rho).expect("listed")
        };
        let (me, se) = errors(i);
        mean_err_r.push(me);
        sd_err_r.push(se);
    }
    println!("--- Fig. 3(b): error vs correlation coefficient (8 stages) ---");
    println!(
        "{}",
        xy_table(
            "rho",
            &rhos,
            &[
                ("% error in mean", mean_err_r),
                ("% error in std dev", sd_err_r),
            ],
            3,
        )
    );
}
