//! Fig. 3: trend in modeling error with (a) the number of pipeline stages
//! and (b) the stage-delay correlation coefficient.
//!
//! The Clark recursion re-Gaussianizes every pairwise max, so its error
//! grows with the number of folds and with correlation. The reference is a
//! large multivariate-normal Monte-Carlo of the exact max.
//!
//! Run: `cargo run --release -p vardelay-bench --bin fig3`

use rand::rngs::StdRng;
use rand::SeedableRng;
use vardelay_bench::render::xy_table;
use vardelay_stats::{max_of, CorrelationMatrix, MultivariateNormal, Normal, RunningStats};

/// MC moments of `max_i X_i` for equi-correlated stages.
fn mc_max_moments(stages: &[Normal], rho: f64, trials: usize, seed: u64) -> (f64, f64) {
    let means: Vec<f64> = stages.iter().map(Normal::mean).collect();
    let sds: Vec<f64> = stages.iter().map(Normal::sd).collect();
    let corr = CorrelationMatrix::uniform(stages.len(), rho).expect("valid rho");
    let mvn = MultivariateNormal::from_correlation(&means, &sds, &corr).expect("PSD");
    let mut rng = StdRng::seed_from_u64(seed);
    let stats: RunningStats = mvn.sample_max_n(&mut rng, trials).into_iter().collect();
    (stats.mean(), stats.sample_sd())
}

fn errors(ns: usize, rho: f64, trials: usize) -> (f64, f64) {
    // Slightly staggered means, like real stages.
    let stages: Vec<Normal> = (0..ns)
        .map(|i| Normal::new(200.0 + (i as f64) * 0.8, 4.0).expect("valid"))
        .collect();
    let corr = CorrelationMatrix::uniform(ns, rho).expect("valid rho");
    let model = max_of(&stages, &corr);
    let (mc_mean, mc_sd) = mc_max_moments(&stages, rho, trials, 0xF163 + ns as u64);
    (
        100.0 * (model.mean() - mc_mean).abs() / mc_mean,
        100.0 * (model.sd() - mc_sd).abs() / mc_sd,
    )
}

fn main() {
    let trials = 400_000;
    println!("Fig. 3 — modeling error of the Clark-based pipeline delay model\n");

    // (a) vs number of stages at rho = 0.
    let ns_axis: Vec<usize> = vec![2, 4, 6, 8, 12, 16, 20, 25, 30];
    let mut mean_err = Vec::new();
    let mut sd_err = Vec::new();
    for &ns in &ns_axis {
        let (me, se) = errors(ns, 0.0, trials);
        mean_err.push(me);
        sd_err.push(se);
    }
    println!("--- Fig. 3(a): error vs number of stages (independent stages) ---");
    println!(
        "{}",
        xy_table(
            "stages",
            &ns_axis.iter().map(|&n| n as f64).collect::<Vec<_>>(),
            &[
                ("% error in mean", mean_err.clone()),
                ("% error in std dev", sd_err.clone()),
            ],
            3,
        )
    );
    println!(
        "paper envelope: mean error < 0.2%, sigma error < 5% — measured max: mean {:.3}%, sigma {:.2}%\n",
        mean_err.iter().copied().fold(0.0, f64::max),
        sd_err.iter().copied().fold(0.0, f64::max)
    );

    // (b) vs correlation coefficient at ns = 8.
    let rhos = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    let mut mean_err_r = Vec::new();
    let mut sd_err_r = Vec::new();
    for &rho in &rhos {
        let (me, se) = errors(8, rho, trials);
        mean_err_r.push(me);
        sd_err_r.push(se);
    }
    println!("--- Fig. 3(b): error vs correlation coefficient (8 stages) ---");
    println!(
        "{}",
        xy_table(
            "rho",
            &rhos,
            &[
                ("% error in mean", mean_err_r),
                ("% error in std dev", sd_err_r),
            ],
            3,
        )
    );
}
