//! Table I: modeling and simulation results of delay distribution and
//! yield for different pipeline configurations.
//!
//! Configurations follow the paper: `8×5`, `5×8`, `5×var` (variable logic
//! depths), `5×8` inter-only, and `5×8` inter+intra. Absolute picosecond
//! values differ from the paper (our substrate is a calibrated gate-level
//! model, not the authors' SPICE testbed); the comparison columns —
//! model-vs-MC agreement and yield tracking — are the reproduced result.
//!
//! Run: `cargo run --release -p vardelay-bench --bin table1`

use vardelay_bench::render::{pct, TextTable};
use vardelay_bench::{analytic_delay, compare, inverter_pipeline, Scenario};
use vardelay_circuit::generators::inverter_chain;
use vardelay_circuit::{LatchParams, StagedPipeline};

fn main() {
    let trials = 20_000;

    // 5 x variable-depth configuration (the paper's "5 l *").
    let var_depths = [6usize, 8, 7, 9, 8];
    let five_var = StagedPipeline::new(
        "5xvar",
        var_depths.iter().map(|&nl| inverter_chain(nl, 1.0)).collect(),
        LatchParams::tg_msff_70nm(),
    );

    // (pipeline, scenario, label suffix)
    let configs: Vec<(StagedPipeline, Scenario, &str)> = vec![
        (inverter_pipeline(8, 5), Scenario::IntraRandomOnly, "8x5"),
        (inverter_pipeline(5, 8), Scenario::IntraRandomOnly, "5x8"),
        (five_var, Scenario::IntraRandomOnly, "5xvar"),
        (inverter_pipeline(5, 8), Scenario::InterOnly, "5x8 inter"),
        (inverter_pipeline(5, 8), Scenario::Combined, "5x8 inter+intra"),
    ];

    let mut t = TextTable::new([
        "Pipeline config",
        "Target (ps)",
        "MC mu (ps)",
        "MC sigma (ps)",
        "MC yield %",
        "Model mu (ps)",
        "Model sigma (ps)",
        "Model yield %",
        "mu err %",
        "sigma err %",
    ]);

    println!("Table I — modeling vs Monte-Carlo for pipeline configurations ({trials} trials)\n");
    for (pipe, scenario, label) in configs {
        // Target chosen like the paper's: a point in the upper body of the
        // distribution (roughly the 85-90% quantile of the analytic model).
        let analytic = analytic_delay(scenario, &pipe);
        let target = (analytic.mean() + 1.2 * analytic.sd()).round();
        let row = compare(scenario, &pipe, target, trials, 0x7AB1);
        t.row([
            format!("{label} ({})", scenario.label()),
            format!("{target:.0}"),
            format!("{:.2}", row.mc_mean),
            format!("{:.2}", row.mc_sd),
            pct(row.mc_yield),
            format!("{:.2}", row.model_mean),
            format!("{:.2}", row.model_sd),
            pct(row.model_yield),
            format!("{:.3}", row.mean_error_pct()),
            format!("{:.2}", row.sd_error_pct()),
        ]);
    }
    println!("{}", t.render());
    println!("shape check vs paper's Table I: mu errors < 0.2%; the model UNDER-estimates sigma");
    println!("for balanced independent stages (paper: 3.27 -> 2.72 on 5x8, a 17% gap; ours is");
    println!("the same direction and magnitude class), is near-exact for inter-die-dominated");
    println!("configs, and yields track MC within a few points everywhere.");
}
