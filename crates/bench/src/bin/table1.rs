//! Table I: modeling and simulation results of delay distribution and
//! yield for different pipeline configurations.
//!
//! Configurations follow the paper: `8×5`, `5×8`, `5×var` (variable logic
//! depths), `5×8` inter-only, and `5×8` inter+intra. Absolute picosecond
//! values differ from the paper (our substrate is a calibrated gate-level
//! model, not the authors' SPICE testbed); the comparison columns —
//! model-vs-MC agreement and yield tracking — are the reproduced result.
//!
//! The five configurations are one declarative [`Sweep`] executed by the
//! parallel engine on its **netlist backend** (gate-level Monte-Carlo on
//! the zero-allocation prepared path); the "Model" columns are the
//! engine's `model_from_mc` (Clark's model on MC-measured stage moments,
//! the paper's §2.4 methodology), the "a-priori" column is the engine's
//! closed-form SSTA/Clark analytic summary — the quantity the `analytic`
//! backend reports without any sampling — and the target is placed at
//! `μ + 1.2σ` of the analytic model via `auto_target_sigmas`.
//!
//! Run: `cargo run --release -p vardelay-bench --bin table1`

use vardelay_bench::render::{pct, TextTable};
use vardelay_engine::{
    run_sweep, BackendSpec, KernelSpec, LatchSpec, PipelineSpec, Scenario, Sweep, SweepOptions,
    TrialPlanSpec, VariationSpec,
};

fn grid(stages: usize, depth: usize) -> PipelineSpec {
    PipelineSpec::InverterGrid {
        stages,
        depth,
        size: 1.0,
        latch: LatchSpec::TgMsff70nm,
    }
}

fn main() {
    let trials = 20_000;
    let rand_only = VariationSpec::RandomOnly { sigma_mv: 35.0 };
    let configs: Vec<(PipelineSpec, VariationSpec, &str)> = vec![
        (grid(8, 5), rand_only, "8x5 (random intra-die only)"),
        (grid(5, 8), rand_only, "5x8 (random intra-die only)"),
        (
            PipelineSpec::InverterStages {
                depths: vec![6, 8, 7, 9, 8],
                size: 1.0,
                latch: LatchSpec::TgMsff70nm,
            },
            rand_only,
            "5xvar (random intra-die only)",
        ),
        (
            grid(5, 8),
            VariationSpec::InterOnly { sigma_mv: 40.0 },
            "5x8 (inter-die only)",
        ),
        (
            grid(5, 8),
            VariationSpec::Combined {
                inter_mv: 20.0,
                random_mv: 35.0,
                systematic_mv: 15.0,
            },
            "5x8 (inter + intra)",
        ),
    ];

    let sweep = Sweep {
        name: "table1".to_owned(),
        seed: 0x7AB1,
        scenarios: configs
            .into_iter()
            .map(|(pipeline, variation, label)| Scenario {
                label: label.to_owned(),
                pipeline,
                variation,
                trials,
                trial_plan: TrialPlanSpec::default(),
                yield_targets: vec![],
                auto_target_sigmas: vec![1.2],
                backend: BackendSpec::Netlist,
                kernel: KernelSpec::default(),
                histogram_bins: 0,
            })
            .collect(),
        grid: None,
    };
    let result = run_sweep(&sweep, &SweepOptions::default()).expect("valid spec");

    let mut t = TextTable::new([
        "Pipeline config",
        "Target (ps)",
        "MC mu (ps)",
        "MC sigma (ps)",
        "MC yield %",
        "Model mu (ps)",
        "Model sigma (ps)",
        "Model yield %",
        "mu err %",
        "sigma err %",
        "a-priori mu err %",
    ]);

    println!("Table I — modeling vs gate-level Monte-Carlo (netlist backend, {trials} trials)\n");
    for s in &result.scenarios {
        let mc = s.mc.as_ref().expect("trials requested");
        let model = mc.model_from_mc.as_ref().expect("stage moments valid");
        t.row([
            s.label.clone(),
            format!("{:.0}", s.targets_ps[0]),
            format!("{:.2}", mc.mean_ps),
            format!("{:.2}", mc.sd_ps),
            pct(mc.yields[0].value),
            format!("{:.2}", model.mean_ps),
            format!("{:.2}", model.sd_ps),
            pct(model.yields[0].value),
            format!(
                "{:.3}",
                100.0 * (model.mean_ps - mc.mean_ps).abs() / mc.mean_ps
            ),
            format!("{:.2}", 100.0 * (model.sd_ps - mc.sd_ps).abs() / mc.sd_ps),
            format!(
                "{:.3}",
                100.0 * (s.analytic.mean_ps - mc.mean_ps).abs() / mc.mean_ps
            ),
        ]);
    }
    println!("{}", t.render());
    println!("the last column is the a-priori SSTA/Clark model (what backend: analytic reports");
    println!("with zero trials) against the gate-level MC — the paper's headline <1% agreement.");
    println!("shape check vs paper's Table I: mu errors < 0.2%; the model UNDER-estimates sigma");
    println!("for balanced independent stages (paper: 3.27 -> 2.72 on 5x8, a 17% gap; ours is");
    println!("the same direction and magnitude class), is near-exact for inter-die-dominated");
    println!("configs, and yields track MC within a few points everywhere.");
}
