//! Plain-text rendering: aligned tables, histograms, and XY charts.
//!
//! Every experiment binary prints its artifact in a form comparable to the
//! paper's table or figure — no plotting dependencies, just text.

use vardelay_stats::{Histogram, Normal};

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Renders to a string with column alignment and a separator line.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = width[i].max(h.chars().count());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                for _ in c.chars().count()..width[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.headers, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
            out.push('\n');
        }
        out
    }
}

/// Renders a Monte-Carlo histogram with an overlaid analytical Gaussian —
/// the Fig. 2 artifact. Each bin shows `#` bars for the MC density and a
/// `*` marker at the analytic density.
pub fn histogram_vs_normal(hist: &Histogram, dist: &Normal, width: usize) -> String {
    let mut out = String::new();
    let bins = hist.counts().len();
    // Scale: max of either density.
    let mut dmax: f64 = 0.0;
    for i in 0..bins {
        dmax = dmax.max(hist.density(i)).max(dist.pdf(hist.bin_center(i)));
    }
    if dmax <= 0.0 {
        return "(empty histogram)".to_owned();
    }
    for i in 0..bins {
        let x = hist.bin_center(i);
        let mc = hist.density(i);
        let model = dist.pdf(x);
        let mc_w = ((mc / dmax) * width as f64).round() as usize;
        let mo_w = (((model / dmax) * width as f64).round() as usize).min(width);
        let mut bar: Vec<char> = vec![' '; width + 1];
        for c in bar.iter_mut().take(mc_w.min(width)) {
            *c = '#';
        }
        bar[mo_w] = '*';
        out.push_str(&format!(
            "{x:9.2} ps |{}|\n",
            bar.into_iter().collect::<String>()
        ));
    }
    out.push_str("  (# = Monte-Carlo density, * = analytical model)\n");
    out
}

/// Renders one or more XY series as rows of `x` then one column per
/// series — the "figure as a table" form used for Figs. 3, 5, 7(b), 8.
///
/// # Panics
///
/// Panics if series lengths differ from `xs`.
pub fn xy_table(
    x_label: &str,
    xs: &[f64],
    series: &[(&str, Vec<f64>)],
    precision: usize,
) -> String {
    let mut headers = vec![x_label.to_owned()];
    headers.extend(series.iter().map(|(n, _)| (*n).to_owned()));
    let mut t = TextTable::new(headers);
    for (i, &x) in xs.iter().enumerate() {
        let mut row = vec![format!("{x:.2}")];
        for (name, ys) in series {
            assert_eq!(ys.len(), xs.len(), "series '{name}' length mismatch");
            row.push(format!("{:.*}", precision, ys[i]));
        }
        t.row(row);
    }
    t.render()
}

/// Formats a probability as a percentage with two decimals.
pub fn pct(p: f64) -> String {
    format!("{:.2}", 100.0 * p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(["a", "long-header", "c"]);
        t.row(["1", "2", "3"]);
        t.row(["wide-cell", "x", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Header columns align with rows: the 'x' under long-header.
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    #[should_panic(expected = "row has 2 cells")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn histogram_rendering_contains_markers() {
        let mut h = Histogram::new(-4.0, 4.0, 16);
        let d = Normal::standard();
        // Fill with roughly normal counts.
        for i in 0..16 {
            let x = h.bin_center(i);
            for _ in 0..((d.pdf(x) * 1000.0) as usize) {
                h.push(x);
            }
        }
        let s = histogram_vs_normal(&h, &d, 40);
        assert!(s.contains('#'));
        assert!(s.contains('*'));
        assert!(s.lines().count() >= 16);
    }

    #[test]
    fn xy_table_renders_series() {
        let s = xy_table(
            "x",
            &[1.0, 2.0],
            &[("f", vec![0.1, 0.2]), ("g", vec![0.3, 0.4])],
            3,
        );
        assert!(s.contains("0.200"));
        assert!(s.contains('g'));
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.805), "80.50");
    }
}
