//! Experiment harness reproducing every table and figure of the paper.
//!
//! One binary per artifact (run with `cargo run -p vardelay-bench --bin
//! <name> --release`):
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `fig2`   | Fig. 2(a,b,c): analytical vs Monte-Carlo delay histograms |
//! | `fig3`   | Fig. 3(a,b): modeling error vs #stages and vs correlation |
//! | `fig4`   | Fig. 4: permissible (μ, σ) design space |
//! | `fig5`   | Fig. 5(a,b,c): variability trends |
//! | `fig7`   | Fig. 7(a,b): balanced vs unbalanced ALU–Decoder pipeline |
//! | `fig8`   | Fig. 8: area-vs-delay curves of the three stages |
//! | `table1` | Table I: model vs MC for five pipeline configurations |
//! | `table2` | Table II: ensuring 80% yield with small area penalty |
//! | `table3` | Table III: area reduction at fixed 80% yield |
//!
//! `table2`/`table3` drive the engine's optimization campaigns
//! (`vardelay_engine::optimize`) — the same code path as
//! `vardelay optimize <spec.json>` — so their frontier search, baseline
//! and Monte-Carlo cross-check are the shared, tested implementations.
//!
//! The library half hosts the shared experiment fixtures (calibrated
//! technology/variation presets) and plain-text rendering helpers.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod fixtures;
pub mod render;

pub use fixtures::*;
