//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use vardelay_stats::clark::{correlation_with_max, max_pair_moments};
use vardelay_stats::matrix::SymMatrix;
use vardelay_stats::{cap_phi, erf, erfc, inv_cap_phi, max_of, CorrelationMatrix, Normal};

fn finite_mean() -> impl Strategy<Value = f64> {
    -1e6..1e6_f64
}

fn positive_sd() -> impl Strategy<Value = f64> {
    1e-3..1e4_f64
}

fn rho() -> impl Strategy<Value = f64> {
    -0.999..0.999_f64
}

proptest! {
    #[test]
    fn erf_is_odd_and_bounded(x in -30.0..30.0_f64) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
        prop_assert!(erf(x) >= -1.0 && erf(x) <= 1.0);
    }

    #[test]
    fn erf_erfc_complement(x in -30.0..30.0_f64) {
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone(a in -8.0..8.0_f64, d in 1e-6..4.0_f64) {
        prop_assert!(cap_phi(a + d) >= cap_phi(a));
    }

    #[test]
    fn quantile_roundtrip(p in 1e-8..1.0_f64) {
        prop_assume!(p < 1.0 - 1e-12);
        let x = inv_cap_phi(p);
        prop_assert!((cap_phi(x) - p).abs() < 1e-9,
            "p={p}, Phi(Phi^-1(p))={}", cap_phi(x));
    }

    #[test]
    fn normal_cdf_quantile_consistent(
        mu in finite_mean(), sd in positive_sd(), p in 0.001..0.999_f64
    ) {
        let d = Normal::new(mu, sd).unwrap();
        let x = d.quantile(p);
        prop_assert!((d.cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn clark_respects_jensen(
        m1 in -1e4..1e4_f64, m2 in -1e4..1e4_f64,
        s1 in positive_sd(), s2 in positive_sd(), r in rho()
    ) {
        let a = Normal::new(m1, s1).unwrap();
        let b = Normal::new(m2, s2).unwrap();
        let m = max_pair_moments(a, b, r);
        prop_assert!(m.mean >= m1.max(m2) - 1e-6 * (1.0 + m1.abs().max(m2.abs())),
            "E[max] {} < max of means {}", m.mean, m1.max(m2));
        prop_assert!(m.variance >= -1e-12);
    }

    #[test]
    fn clark_is_symmetric(
        m1 in -100.0..100.0_f64, m2 in -100.0..100.0_f64,
        s1 in 0.1..50.0_f64, s2 in 0.1..50.0_f64, r in rho()
    ) {
        let a = Normal::new(m1, s1).unwrap();
        let b = Normal::new(m2, s2).unwrap();
        let ab = max_pair_moments(a, b, r);
        let ba = max_pair_moments(b, a, r);
        prop_assert!((ab.mean - ba.mean).abs() < 1e-9);
        prop_assert!((ab.variance - ba.variance).abs() < 1e-9);
    }

    #[test]
    fn clark_variance_bounded_by_inputs(
        m in -100.0..100.0_f64, s1 in 0.1..50.0_f64, s2 in 0.1..50.0_f64, r in 0.0..0.999_f64
    ) {
        // For non-negatively correlated inputs the max's variance cannot
        // exceed the larger input variance plus cross terms; a loose but
        // useful sanity bound: var <= max(var1, var2) * (1 + 1).
        let a = Normal::new(m, s1).unwrap();
        let b = Normal::new(m, s2).unwrap();
        let mx = max_pair_moments(a, b, r);
        let cap = (s1 * s1).max(s2 * s2) * 2.0 + 1e-9;
        prop_assert!(mx.variance <= cap, "var {} cap {}", mx.variance, cap);
    }

    #[test]
    fn correlation_with_max_in_range(
        m1 in -50.0..50.0_f64, m2 in -50.0..50.0_f64,
        s1 in 0.1..20.0_f64, s2 in 0.1..20.0_f64,
        r12 in rho(), r13 in rho(), r23 in rho()
    ) {
        let a = Normal::new(m1, s1).unwrap();
        let b = Normal::new(m2, s2).unwrap();
        let m = max_pair_moments(a, b, r12);
        let rr = correlation_with_max(a, b, &m, r13, r23);
        prop_assert!((-1.0..=1.0).contains(&rr));
    }

    #[test]
    fn max_of_is_permutation_invariant(
        means in proptest::collection::vec(50.0..150.0_f64, 2..6),
        r in 0.0..0.9_f64
    ) {
        let n = means.len();
        let stages: Vec<Normal> =
            means.iter().map(|&m| Normal::new(m, 3.0).unwrap()).collect();
        let corr = CorrelationMatrix::uniform(n, r).unwrap();
        let fwd = max_of(&stages, &corr);
        let mut rev = stages.clone();
        rev.reverse();
        let bwd = max_of(&rev, &corr);
        // The mean-sorted recursion makes the result order-independent.
        prop_assert!((fwd.mean() - bwd.mean()).abs() < 1e-9);
        prop_assert!((fwd.sd() - bwd.sd()).abs() < 1e-9);
    }

    #[test]
    fn max_of_dominates_each_marginal(
        means in proptest::collection::vec(50.0..150.0_f64, 1..6)
    ) {
        let stages: Vec<Normal> =
            means.iter().map(|&m| Normal::new(m, 2.0).unwrap()).collect();
        let corr = CorrelationMatrix::identity(stages.len());
        let mx = max_of(&stages, &corr);
        let best = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mx.mean() >= best - 1e-9);
    }

    #[test]
    fn cholesky_reconstructs_random_spd(
        vals in proptest::collection::vec(-1.0..1.0_f64, 9)
    ) {
        // A = B B^T + eps I is SPD for any B.
        let b = SymMatrix::from_rows(3, &vals).unwrap();
        let mut a = SymMatrix::from_fn(3, |i, j| {
            (0..3).map(|k| b.get(i, k) * b.get(j, k)).sum::<f64>()
        });
        for i in 0..3 {
            a.set(i, i, a.get(i, i) + 0.1);
        }
        let chol = a.cholesky(0.0).unwrap();
        let r = chol.reconstruct();
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((r.get(i, j) - a.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn uniform_correlation_covariance_roundtrip(
        n in 2usize..6, r in -0.2..0.95_f64,
        sds in proptest::collection::vec(0.1..10.0_f64, 6)
    ) {
        let corr = CorrelationMatrix::uniform(n, r).unwrap();
        let cov = corr.to_covariance(&sds[..n]);
        let back = CorrelationMatrix::from_covariance(&cov).unwrap();
        for i in 0..n {
            for j in 0..n {
                prop_assert!((back.get(i, j) - corr.get(i, j)).abs() < 1e-9);
            }
        }
    }
}
