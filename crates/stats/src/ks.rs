//! Kolmogorov–Smirnov goodness-of-fit utilities.
//!
//! Used by the experiment harness to quantify how closely the analytical
//! (Clark-approximated) pipeline-delay distribution matches Monte-Carlo
//! samples — the validation of §2.4 / Fig. 2 of the paper.

use crate::normal::Normal;

/// One-sample Kolmogorov–Smirnov statistic of `samples` against a reference
/// CDF `cdf`.
///
/// Returns `D = sup_x |F_n(x) - F(x)|`.
///
/// # Panics
///
/// Panics if `samples` is empty or contains NaN.
pub fn ks_statistic<F: Fn(f64) -> f64>(samples: &[f64], cdf: F) -> f64 {
    assert!(!samples.is_empty(), "KS statistic of an empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// KS statistic against a [`Normal`] reference.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn ks_against_normal(samples: &[f64], dist: &Normal) -> f64 {
    ks_statistic(samples, |x| dist.cdf(x))
}

/// Approximate p-value for the one-sample KS statistic `d` at sample size
/// `n`, via the asymptotic Kolmogorov distribution
/// `Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²)` with Stephens' small-sample
/// correction.
pub fn ks_p_value(d: f64, n: usize) -> f64 {
    let nf = n as f64;
    let lambda = (nf.sqrt() + 0.12 + 0.11 / nf.sqrt()) * d;
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::Normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ks_of_own_samples_is_small() {
        let d = Normal::new(5.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let xs = d.sample_n(&mut rng, 20_000);
        let ks = ks_against_normal(&xs, &d);
        assert!(ks < 0.015, "KS {ks}");
        assert!(ks_p_value(ks, xs.len()) > 0.01);
    }

    #[test]
    fn ks_detects_wrong_mean() {
        let d = Normal::new(5.0, 2.0).unwrap();
        let shifted = Normal::new(6.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let xs = d.sample_n(&mut rng, 5_000);
        let ks = ks_against_normal(&xs, &shifted);
        assert!(ks > 0.1, "KS {ks} should flag the shift");
        assert!(ks_p_value(ks, xs.len()) < 1e-6);
    }

    #[test]
    fn ks_statistic_exact_small_case() {
        // Single sample at the median of U(0,1)-like cdf.
        let d = ks_statistic(&[0.5], |x| x.clamp(0.0, 1.0));
        assert!((d - 0.5).abs() < 1e-12);
    }
}
