//! Streaming descriptive statistics, quantiles, and histograms.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean/variance (Welford's algorithm) with
/// min/max tracking.
///
/// ```
/// use vardelay_stats::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] { s.push(x); }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-15);
/// assert!((s.sample_sd() - (5.0f64/3.0).sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation (Pébay's single-pass update through the 4th
    /// central moment).
    pub fn push(&mut self, x: f64) {
        let n1 = self.count as f64;
        self.count += 1;
        let n = self.count as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction,
    /// Pébay's pairwise formulas).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let m4 = self.m4
            + other.m4
            + delta2 * delta2 * n1 * n2 * (n1 * n1 - n1 * n2 + n2 * n2) / (n * n * n)
            + 6.0 * delta2 * (n1 * n1 * other.m2 + n2 * n2 * self.m2) / (n * n)
            + 4.0 * delta * (n1 * other.m3 - n2 * self.m3) / n;
        let m3 = self.m3
            + other.m3
            + delta * delta2 * n1 * n2 * (n1 - n2) / (n * n)
            + 3.0 * delta * (n1 * other.m2 - n2 * self.m2) / n;
        let m2 = self.m2 + other.m2 + delta2 * n1 * n2 / n;
        self.mean += delta * n2 / n;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Unbiased sample standard deviation.
    #[inline]
    pub fn sample_sd(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Coefficient of variation `sd/mean` (the paper's σ/μ variability).
    #[inline]
    pub fn variability(&self) -> f64 {
        self.sample_sd() / self.mean
    }

    /// Sample skewness `g1 = (m3/n) / (m2/n)^(3/2)` — the primary
    /// diagnostic of the paper's Gaussian approximation: the exact max of
    /// Gaussians is right-skewed, and `g1` measures how much a Gaussian
    /// fit misses. Returns 0 for fewer than three observations or zero
    /// variance.
    pub fn skewness(&self) -> f64 {
        if self.count < 3 || self.m2 <= 0.0 {
            return 0.0;
        }
        let n = self.count as f64;
        (self.m3 / n) / (self.m2 / n).powf(1.5)
    }

    /// Excess kurtosis `g2 = (m4/n)/(m2/n)^2 - 3` (0 for a Gaussian).
    /// Returns 0 for fewer than four observations or zero variance.
    pub fn excess_kurtosis(&self) -> f64 {
        if self.count < 4 || self.m2 <= 0.0 {
            return 0.0;
        }
        let n = self.count as f64;
        (self.m4 / n) / (self.m2 / n).powi(2) - 3.0
    }

    /// Minimum observation (`+inf` when empty).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Default for RunningStats {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.6} sd={:.6} min={:.6} max={:.6}",
            self.count,
            self.mean,
            self.sample_sd(),
            self.min,
            self.max
        )
    }
}

/// Empirical quantiles of a sample (sorted copy held internally).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Quantiles {
    sorted: Vec<f64>,
}

impl Quantiles {
    /// Builds from any collection of finite values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    pub fn new(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "quantiles of an empty sample");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Quantiles { sorted }
    }

    /// Linear-interpolated quantile at probability `p` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn at(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let idx = p * (n - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median shortcut.
    #[inline]
    pub fn median(&self) -> f64 {
        self.at(0.5)
    }

    /// Fraction of the sample `<= x` — the empirical CDF, which is also the
    /// Monte-Carlo yield estimate at a target delay `x`.
    pub fn ecdf(&self, x: f64) -> f64 {
        // partition_point gives the number of elements <= x on sorted data.
        let k = self.sorted.partition_point(|&v| v <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// The sorted sample.
    #[inline]
    pub fn as_sorted(&self) -> &[f64] {
        &self.sorted
    }
}

/// A fixed-range equal-width histogram.
///
/// ```
/// use vardelay_stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for x in [1.0, 1.5, 7.2, 9.9, -3.0, 12.0] { h.push(x); }
/// assert_eq!(h.underflow(), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.counts()[0], 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Creates a histogram sized to cover a sample with the given bins.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or `bins == 0`.
    pub fn auto(values: &[f64], bins: usize) -> Self {
        assert!(!values.is_empty(), "histogram of an empty sample");
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let pad = ((hi - lo) * 1e-9).max(f64::MIN_POSITIVE);
        let mut h = Histogram::new(lo, hi + pad, bins);
        h.extend(values.iter().copied());
        h
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Merges another histogram over the **same range and binning** —
    /// integer count addition, so merging is exact and order-independent
    /// (unlike floating-point moment merges). This is what lets the sweep
    /// engine stream histograms through its block accumulators without
    /// weakening its determinism contract.
    ///
    /// # Panics
    ///
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "histogram layout mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Lower edge of the range.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the range.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Bin counts.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of values below the range.
    #[inline]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of values at/above the upper edge.
    #[inline]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Total in-range count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Normalized density value of bin `i` (integrates to ~1 over the range).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the histogram is empty.
    pub fn density(&self, i: usize) -> f64 {
        let total = self.total();
        assert!(total > 0, "density of an empty histogram");
        self.counts[i] as f64 / (total as f64 * self.bin_width())
    }
}

impl Extend<f64> for Histogram {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.731).sin() * 10.0 + 5.0)
            .collect();
        let s: RunningStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() as f64 - 1.0);
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| f64::from(i) * 0.1).collect();
        let mut a: RunningStats = xs[..200].iter().copied().collect();
        let b: RunningStats = xs[200..].iter().copied().collect();
        a.merge(&b);
        let full: RunningStats = xs.iter().copied().collect();
        assert_eq!(a.count(), full.count());
        assert!((a.mean() - full.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - full.sample_variance()).abs() < 1e-9);
        assert_eq!(a.min(), full.min());
        assert_eq!(a.max(), full.max());
    }

    #[test]
    fn higher_moments_match_two_pass() {
        let xs: Vec<f64> = (0..2000)
            .map(|i| {
                let t = i as f64 * 0.017;
                t.sin() * 3.0 + (t * 1.7).cos().powi(3) * 2.0
            })
            .collect();
        let s: RunningStats = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let m2 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let m3 = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n;
        let m4 = xs.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n;
        let skew = m3 / m2.powf(1.5);
        let kurt = m4 / (m2 * m2) - 3.0;
        assert!(
            (s.skewness() - skew).abs() < 1e-9,
            "{} vs {skew}",
            s.skewness()
        );
        assert!(
            (s.excess_kurtosis() - kurt).abs() < 1e-9,
            "{} vs {kurt}",
            s.excess_kurtosis()
        );
    }

    #[test]
    fn merged_higher_moments_match_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 97) as f64 * 0.3).collect();
        let mut a: RunningStats = xs[..300].iter().copied().collect();
        let b: RunningStats = xs[300..].iter().copied().collect();
        a.merge(&b);
        let full: RunningStats = xs.iter().copied().collect();
        assert!((a.skewness() - full.skewness()).abs() < 1e-9);
        assert!((a.excess_kurtosis() - full.excess_kurtosis()).abs() < 1e-9);
    }

    #[test]
    fn gaussian_samples_have_small_skew_and_kurtosis() {
        use crate::normal::Normal;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let d = Normal::new(10.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let s: RunningStats = d.sample_n(&mut rng, 100_000).into_iter().collect();
        assert!(s.skewness().abs() < 0.03, "skew {}", s.skewness());
        assert!(
            s.excess_kurtosis().abs() < 0.06,
            "kurt {}",
            s.excess_kurtosis()
        );
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningStats = [1.0, 2.0].iter().copied().collect();
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantiles_interpolate() {
        let q = Quantiles::new(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(q.at(0.0), 1.0);
        assert_eq!(q.at(1.0), 4.0);
        assert!((q.median() - 2.5).abs() < 1e-15);
        assert!((q.at(0.25) - 1.75).abs() < 1e-15);
    }

    #[test]
    fn ecdf_counts_inclusive() {
        let q = Quantiles::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(q.ecdf(2.0), 0.5);
        assert_eq!(q.ecdf(0.5), 0.0);
        assert_eq!(q.ecdf(4.0), 1.0);
    }

    #[test]
    fn histogram_bins_and_density() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend((0..100).map(|i| f64::from(i) * 0.1)); // uniform over [0,10)
        assert_eq!(h.total(), 100);
        for i in 0..10 {
            assert_eq!(h.counts()[i], 10);
            assert!((h.density(i) - 0.1).abs() < 1e-12);
        }
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_auto_covers_extremes() {
        let h = Histogram::auto(&[-5.0, 0.0, 5.0], 4);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.total(), 3);
    }
}
