//! Small dense symmetric matrices with Cholesky factorization.
//!
//! Correlation/covariance matrices in this workspace are small (one entry per
//! pipeline stage or spatial region), so a simple row-major dense
//! representation is the right tool — no linear-algebra dependency needed.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Error from symmetric-matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The matrix (or input data) had inconsistent dimensions.
    DimensionMismatch {
        /// Expected number of elements/dimension.
        expected: usize,
        /// Actual number provided.
        actual: usize,
    },
    /// Cholesky factorization failed: the matrix is not positive definite
    /// (beyond the tolerance used for the diagonal).
    NotPositiveDefinite {
        /// Index of the pivot where factorization broke down.
        pivot: usize,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            MatrixError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

/// A dense symmetric `n x n` matrix stored row-major.
///
/// Only the full storage is kept (not packed triangular) for simplicity;
/// the symmetry invariant is enforced by the mutators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Creates the `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        SymMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a symmetric matrix from a full row-major slice.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `data.len() != n * n`.
    /// Asymmetric input is symmetrized by averaging `(a_ij + a_ji)/2`.
    pub fn from_rows(n: usize, data: &[f64]) -> Result<Self, MatrixError> {
        if data.len() != n * n {
            return Err(MatrixError::DimensionMismatch {
                expected: n * n,
                actual: data.len(),
            });
        }
        let mut m = SymMatrix {
            n,
            data: data.to_vec(),
        };
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (m.data[i * n + j] + m.data[j * n + i]);
                m.data[i * n + j] = avg;
                m.data[j * n + i] = avg;
            }
        }
        Ok(m)
    }

    /// Builds a matrix by evaluating `f(i, j)` for every `i <= j`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(n: usize, mut f: F) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            for j in i..n {
                let v = f(i, j);
                m.data[i * n + j] = v;
                m.data[j * n + i] = v;
            }
        }
        m
    }

    /// The dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j]
    }

    /// Sets elements `(i, j)` and `(j, i)` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "vector length mismatch");
        (0..self.n)
            .map(|i| {
                let row = &self.data[i * self.n..(i + 1) * self.n];
                row.iter().zip(x).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// Quadratic form `x^T A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        self.mul_vec(x).iter().zip(x).map(|(a, b)| a * b).sum()
    }

    /// Lower-triangular Cholesky factor `L` with `L L^T = A`.
    ///
    /// A small non-negative `jitter` is added to the diagonal before
    /// factorization; pass `0.0` for a strict factorization. This is the
    /// standard remedy for correlation matrices that are PSD-but-singular
    /// (e.g. perfectly correlated stages, rho = 1).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::NotPositiveDefinite`] if a pivot is negative
    /// beyond tolerance.
    pub fn cholesky(&self, jitter: f64) -> Result<Cholesky, MatrixError> {
        let n = self.n;
        let mut l = vec![0.0; n * n];
        for j in 0..n {
            for i in j..n {
                let mut sum = self.data[i * n + j];
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    // Tolerate tiny negative pivots from round-off on
                    // singular PSD matrices by flooring at zero.
                    if sum < -1e-9 * (1.0 + self.data[j * n + j].abs()) {
                        return Err(MatrixError::NotPositiveDefinite { pivot: j });
                    }
                    l[j * n + j] = sum.max(0.0).sqrt();
                } else {
                    let d = l[j * n + j];
                    l[i * n + j] = if d > 0.0 { sum / d } else { 0.0 };
                }
            }
        }
        Ok(Cholesky { n, l })
    }
}

impl fmt::Display for SymMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            for j in 0..self.n {
                write!(f, "{:10.5} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Lower-triangular Cholesky factor of a symmetric PSD matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    n: usize,
    l: Vec<f64>,
}

impl Cholesky {
    /// The dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Element `L[i][j]` (zero above the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.l[i * self.n + j]
    }

    /// Computes `y = L z`, transforming iid standard normals `z` into
    /// correlated variates.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != dim()`.
    pub fn transform(&self, z: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.transform_into(z, &mut y);
        y
    }

    /// Computes `y = L z` into a caller-provided buffer — the
    /// allocation-free variant of [`Cholesky::transform`] used by
    /// Monte-Carlo hot paths. Summation order is identical to
    /// `transform`, so the two produce bit-identical results.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != dim()` or `y.len() != dim()`.
    pub fn transform_into(&self, z: &[f64], y: &mut [f64]) {
        assert_eq!(z.len(), self.n, "vector length mismatch");
        assert_eq!(y.len(), self.n, "output length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = (0..=i).map(|j| self.l[i * self.n + j] * z[j]).sum();
        }
    }

    /// Reconstructs `L L^T` (mainly for testing/diagnostics).
    pub fn reconstruct(&self) -> SymMatrix {
        SymMatrix::from_fn(self.n, |i, j| {
            (0..=i.min(j))
                .map(|k| self.l[i * self.n + k] * self.l[j * self.n + k])
                .sum()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_cholesky_is_identity() {
        let a = SymMatrix::identity(4);
        let c = a.cholesky(0.0).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((c.get(i, j) - want).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn cholesky_reconstructs() {
        // A = B B^T for random-ish B is SPD.
        let a = SymMatrix::from_rows(3, &[4.0, 2.0, 0.6, 2.0, 5.0, 1.2, 0.6, 1.2, 3.0]).unwrap();
        let c = a.cholesky(0.0).unwrap();
        let r = c.reconstruct();
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (r.get(i, j) - a.get(i, j)).abs() < 1e-12,
                    "({i},{j}): {} vs {}",
                    r.get(i, j),
                    a.get(i, j)
                );
            }
        }
    }

    #[test]
    fn singular_psd_matrix_factors_with_zero_pivot() {
        // Perfectly correlated 2x2 correlation matrix (rank 1).
        let a = SymMatrix::from_rows(2, &[1.0, 1.0, 1.0, 1.0]).unwrap();
        let c = a.cholesky(0.0).unwrap();
        let r = c.reconstruct();
        assert!((r.get(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = SymMatrix::from_rows(2, &[1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(
            a.cholesky(0.0),
            Err(MatrixError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn from_rows_symmetrizes() {
        let a = SymMatrix::from_rows(2, &[1.0, 0.2, 0.4, 1.0]).unwrap();
        assert!((a.get(0, 1) - 0.3).abs() < 1e-15);
        assert_eq!(a.get(0, 1), a.get(1, 0));
    }

    #[test]
    fn dimension_mismatch_detected() {
        assert!(matches!(
            SymMatrix::from_rows(2, &[1.0, 0.0, 0.0]),
            Err(MatrixError::DimensionMismatch {
                expected: 4,
                actual: 3
            })
        ));
    }

    #[test]
    fn mul_vec_and_quadratic_form() {
        let a = SymMatrix::from_rows(2, &[2.0, 1.0, 1.0, 3.0]).unwrap();
        let y = a.mul_vec(&[1.0, -1.0]);
        assert_eq!(y, vec![1.0, -2.0]);
        assert!((a.quadratic_form(&[1.0, -1.0]) - 3.0).abs() < 1e-15);
    }

    #[test]
    fn transform_applies_lower_triangle() {
        let a = SymMatrix::from_rows(2, &[1.0, 0.5, 0.5, 1.0]).unwrap();
        let c = a.cholesky(0.0).unwrap();
        let y = c.transform(&[1.0, 0.0]);
        assert!((y[0] - 1.0).abs() < 1e-14);
        assert!((y[1] - 0.5).abs() < 1e-14);
    }
}
