//! Scalar Gaussian mathematics.
//!
//! Everything here is implemented from first principles (series and continued
//! fractions for `erf`/`erfc`, Acklam's rational approximation plus a Halley
//! refinement for the quantile) so the workspace carries no external special-
//! function dependency and the numerics are auditable.

use std::fmt;

use rand::{Rng, RngExt as _};
use serde::{Deserialize, Serialize};

/// `1/sqrt(2*pi)`.
pub(crate) const FRAC_1_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
/// `sqrt(2)`.
const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// Error function `erf(x) = 2/sqrt(pi) * Integral_0^x exp(-t^2) dt`.
///
/// Uses the Maclaurin series for small `|x|` and the continued-fraction
/// expansion of `erfc` for large `|x|`; accurate to ~1e-15 relative error
/// over the whole real line.
///
/// ```
/// use vardelay_stats::erf;
/// assert!((erf(0.0)).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-14);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.0 {
        return -erf(-x);
    }
    if x < 2.0 {
        erf_series(x)
    } else {
        1.0 - erfc_cf(x)
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Remains accurate in the far tail (down to ~1e-300) where `1 - erf(x)`
/// would suffer catastrophic cancellation.
///
/// ```
/// use vardelay_stats::erfc;
/// assert!((erfc(0.0) - 1.0).abs() < 1e-15);
/// // Deep-tail value stays finite and positive.
/// assert!(erfc(10.0) > 0.0 && erfc(10.0) < 1e-40);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 2.0 {
        1.0 - erf_series(x)
    } else {
        erfc_cf(x)
    }
}

/// Non-alternating Maclaurin series for `erf`, valid (fast-converging)
/// for `|x| < 2`.
fn erf_series(x: f64) -> f64 {
    // erf(x) = 2/sqrt(pi) * exp(-x^2) * sum_{n>=0} (2x^2)^n * x / (1*3*...*(2n+1))
    // — every term is positive, so there is no cancellation.
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    let mut n = 0u32;
    loop {
        n += 1;
        term *= 2.0 * x2 / (2.0 * f64::from(n) + 1.0);
        let new = sum + term;
        if new == sum || n > 300 {
            break;
        }
        sum = new;
    }
    2.0 / std::f64::consts::PI.sqrt() * (-x2).exp() * sum
}

/// Stieltjes continued fraction for `erfc`, valid for `x >= 2`
/// (evaluated bottom-up with a fixed depth that is ample in that range).
fn erfc_cf(x: f64) -> f64 {
    // erfc(x) = exp(-x^2)/(x*sqrt(pi)) * 1/(1 + q1/(1 + q2/(1 + ...)))
    // with q_n = n / (2 x^2).
    let c = 0.5 / (x * x);
    let depth = 120;
    let mut frac = 0.0_f64;
    for k in (1..=depth).rev() {
        frac = f64::from(k) * c / (1.0 + frac);
    }
    (-x * x).exp() / (x * std::f64::consts::PI.sqrt()) / (1.0 + frac)
}

/// Standard normal probability density `phi(x) = exp(-x^2/2)/sqrt(2*pi)`.
///
/// ```
/// use vardelay_stats::phi;
/// assert!((phi(0.0) - 0.3989422804014327).abs() < 1e-15);
/// ```
#[inline]
pub fn phi(x: f64) -> f64 {
    FRAC_1_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal cumulative distribution `Phi(x)`.
///
/// The name `cap_phi` ("capital phi") follows the paper's notation where
/// `Φ` is the CDF and `φ` ([`phi`]) the PDF.
///
/// ```
/// use vardelay_stats::cap_phi;
/// assert!((cap_phi(0.0) - 0.5).abs() < 1e-15);
/// assert!((cap_phi(1.959963984540054) - 0.975).abs() < 1e-12);
/// ```
#[inline]
pub fn cap_phi(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Inverse standard normal CDF (the quantile function `Phi^-1`).
///
/// Acklam's rational approximation refined with one Halley step against the
/// high-precision [`cap_phi`]; absolute error is at the machine-precision
/// level for `p` in `(1e-300, 1 - 1e-16)`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)` (the open interval) or is NaN.
///
/// ```
/// use vardelay_stats::{cap_phi, inv_cap_phi};
/// let x = inv_cap_phi(0.8);
/// assert!((cap_phi(x) - 0.8).abs() < 1e-14);
/// ```
pub fn inv_cap_phi(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "inv_cap_phi requires p in the open interval (0, 1), got {p}"
    );
    // Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    };
    // One Halley refinement step: u = (Phi(x) - p) / phi(x);
    // x <- x - u / (1 + x*u/2).
    let e = cap_phi(x) - p;
    let u = e / phi(x);
    x - u / (1.0 + 0.5 * x * u)
}

/// Error constructing a [`Normal`] distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The mean was NaN or infinite.
    NonFiniteMean,
    /// The standard deviation was negative, NaN, or infinite.
    InvalidStdDev,
}

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalError::NonFiniteMean => write!(f, "mean must be finite"),
            NormalError::InvalidStdDev => {
                write!(f, "standard deviation must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for NormalError {}

/// A univariate Gaussian distribution `N(mean, sd^2)`.
///
/// A zero standard deviation is allowed and denotes a degenerate
/// (deterministic) distribution — useful as the limit case of perfectly
/// determined delays.
///
/// ```
/// use vardelay_stats::Normal;
/// let d = Normal::new(200.0, 3.0)?;
/// assert!((d.cdf(200.0) - 0.5).abs() < 1e-12);
/// assert!((d.quantile(0.99) - (200.0 + 3.0 * 2.3263478740408408)).abs() < 1e-6);
/// # Ok::<(), vardelay_stats::NormalError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a Gaussian with the given mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] if `mean` is not finite or `sd` is negative
    /// or not finite.
    pub fn new(mean: f64, sd: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::NonFiniteMean);
        }
        if !sd.is_finite() || sd < 0.0 {
            return Err(NormalError::InvalidStdDev);
        }
        Ok(Normal { mean, sd })
    }

    /// The standard normal `N(0, 1)`.
    #[inline]
    pub fn standard() -> Self {
        Normal { mean: 0.0, sd: 1.0 }
    }

    /// A degenerate (zero-variance) distribution concentrated at `value`.
    #[inline]
    pub fn degenerate(value: f64) -> Self {
        Normal {
            mean: value,
            sd: 0.0,
        }
    }

    /// The mean.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    #[inline]
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// The variance `sd^2`.
    #[inline]
    pub fn variance(&self) -> f64 {
        self.sd * self.sd
    }

    /// The coefficient of variation `sd / mean` — the paper's
    /// "variability" metric (σ/μ).
    ///
    /// Returns `NaN` when the mean is zero.
    #[inline]
    pub fn variability(&self) -> f64 {
        self.sd / self.mean
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        if self.sd == 0.0 {
            return if x == self.mean { f64::INFINITY } else { 0.0 };
        }
        phi((x - self.mean) / self.sd) / self.sd
    }

    /// Cumulative probability `Pr{X <= x}`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sd == 0.0 {
            return if x >= self.mean { 1.0 } else { 0.0 };
        }
        cap_phi((x - self.mean) / self.sd)
    }

    /// Quantile (inverse CDF) at probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.sd == 0.0 {
            assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
            return self.mean;
        }
        self.mean + self.sd * inv_cap_phi(p)
    }

    /// Draws one sample using the Box–Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.sd * sample_standard_normal(rng)
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The distribution of `X + Y` for independent `X`, `Y`.
    pub fn add_independent(&self, other: &Normal) -> Normal {
        Normal {
            mean: self.mean + other.mean,
            sd: (self.variance() + other.variance()).sqrt(),
        }
    }

    /// The distribution of `c * X + d`.
    pub fn affine(&self, c: f64, d: f64) -> Normal {
        Normal {
            mean: c * self.mean + d,
            sd: (c * self.sd).abs(),
        }
    }
}

impl Default for Normal {
    fn default() -> Self {
        Normal::standard()
    }
}

impl fmt::Display for Normal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N({:.6}, {:.6}²)", self.mean, self.sd)
    }
}

/// Draws a standard-normal variate via the Box–Muller transform.
///
/// Kept as a free function so samplers that only need standard variates
/// (e.g. the multivariate sampler) avoid constructing a [`Normal`].
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller; u1 in (0,1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun / mpmath.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (1.5, 0.9661051464753107),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
            (-1.0, -0.8427007929497149),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 1e-13,
                "erf({x}) = {} want {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(3) = 2.2090496998585441e-05, erfc(5) = 1.5374597944280349e-12
        assert!((erfc(3.0) - 2.209049699858544e-5).abs() / 2.209049699858544e-5 < 1e-10);
        assert!((erfc(5.0) - 1.537_459_794_428_035e-12).abs() / 1.537_459_794_428_035e-12 < 1e-10);
        assert!((erfc(8.0) - 1.1224297172982928e-29).abs() / 1.1224297172982928e-29 < 1e-9);
    }

    #[test]
    fn erf_erfc_complementarity() {
        for i in -40..=40 {
            let x = f64::from(i) * 0.1;
            assert!(
                (erf(x) + erfc(x) - 1.0).abs() < 1e-13,
                "complementarity fails at {x}"
            );
        }
    }

    #[test]
    fn cap_phi_symmetry_and_known_points() {
        assert!((cap_phi(0.0) - 0.5).abs() < 1e-15);
        for i in 0..=30 {
            let x = f64::from(i) * 0.2;
            assert!((cap_phi(x) + cap_phi(-x) - 1.0).abs() < 1e-13);
        }
        // 95th percentile.
        assert!((cap_phi(1.6448536269514722) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn inv_cap_phi_roundtrip() {
        for &p in &[1e-10, 1e-6, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 1.0 - 1e-9] {
            let x = inv_cap_phi(p);
            assert!(
                (cap_phi(x) - p).abs() < 1e-12 * p.max(1e-3),
                "roundtrip p={p}: Phi(Phi^-1(p)) = {}",
                cap_phi(x)
            );
        }
    }

    #[test]
    #[should_panic(expected = "open interval")]
    fn inv_cap_phi_rejects_zero() {
        let _ = inv_cap_phi(0.0);
    }

    #[test]
    fn normal_construction_validation() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(5.0, 0.0).is_ok());
    }

    #[test]
    fn normal_pdf_integrates_to_one() {
        let d = Normal::new(2.0, 3.0).unwrap();
        // Trapezoidal integration over +-8 sigma.
        let n = 4000;
        let lo = 2.0 - 24.0;
        let hi = 2.0 + 24.0;
        let h = (hi - lo) / n as f64;
        let mut s = 0.5 * (d.pdf(lo) + d.pdf(hi));
        for i in 1..n {
            s += d.pdf(lo + h * i as f64);
        }
        assert!((s * h - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_normal_behaviour() {
        let d = Normal::degenerate(7.0);
        assert_eq!(d.cdf(6.999), 0.0);
        assert_eq!(d.cdf(7.0), 1.0);
        assert_eq!(d.quantile(0.5), 7.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng), 7.0);
    }

    #[test]
    fn sampling_matches_moments() {
        let d = Normal::new(-3.0, 2.5).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let xs = d.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        assert!((mean - -3.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 2.5).abs() < 0.02, "sd {}", var.sqrt());
    }

    #[test]
    fn affine_and_sum() {
        let a = Normal::new(1.0, 2.0).unwrap();
        let b = Normal::new(3.0, 4.0).unwrap();
        let s = a.add_independent(&b);
        assert!((s.mean() - 4.0).abs() < 1e-15);
        assert!((s.sd() - 20.0_f64.sqrt()).abs() < 1e-15);
        let t = a.affine(-2.0, 1.0);
        assert!((t.mean() - -1.0).abs() < 1e-15);
        assert!((t.sd() - 4.0).abs() < 1e-15);
    }

    #[test]
    fn variability_is_cov() {
        let d = Normal::new(200.0, 10.0).unwrap();
        assert!((d.variability() - 0.05).abs() < 1e-15);
    }
}
