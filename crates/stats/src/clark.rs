//! Clark's moment-matching approximation for the maximum of correlated
//! Gaussian random variables.
//!
//! C. E. Clark, *"The Greatest of a Finite Set of Random Variables"*,
//! Operations Research 9(2), 1961 — reference \[8\] of the paper. The paper's
//! eqs. (4)–(6) are implemented verbatim:
//!
//! * [`max_pair`] / [`max_pair_moments`] — first two moments of
//!   `max(X1, X2)` for correlated Gaussians (eq. 5).
//! * [`correlation_with_max`] — correlation of a third Gaussian with the
//!   pairwise max (eq. 6), needed to chain the operator.
//! * [`max_of`] — the N-way recursion of eq. (4): variables are sorted by
//!   increasing mean (the ordering the paper uses to minimize modeling
//!   error, §2.4) and folded pairwise.

use crate::correlation::CorrelationMatrix;
use crate::normal::{cap_phi, phi, Normal};

/// Relative threshold below which `a = sqrt(var1 + var2 - 2*cov)` is
/// treated as zero, i.e. the two inputs are (numerically) the same random
/// variable up to a mean shift and the max is taken exactly. Scaled by the
/// input standard deviations so near-perfect correlations produced by
/// round-off (e.g. `rho = 1 - 1e-16` from a covariance/variance division)
/// land in the exact branch; the approximation error introduced is
/// `O(a·phi(0))`, i.e. below `1e-7` of the inputs' scale.
const DEGENERATE_A_REL: f64 = 1e-7;

/// Full set of intermediate quantities from a pairwise Clark max.
///
/// Exposing the intermediates (`a`, `alpha`, tail probabilities) follows
/// C-INTERMEDIATE: downstream code (e.g. error analysis in the experiment
/// harness) reuses them without recomputation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxPairMoments {
    /// `E[max(X1, X2)]`.
    pub mean: f64,
    /// `Var[max(X1, X2)]` (clamped at 0 against round-off).
    pub variance: f64,
    /// `a = sqrt(sd1^2 + sd2^2 - 2 rho sd1 sd2)`.
    pub a: f64,
    /// `alpha = (mu1 - mu2) / a` (`+inf`/`-inf` in the degenerate case).
    pub alpha: f64,
    /// `Phi(alpha)` — the probability that `X1` is the larger variable.
    pub p_first_larger: f64,
}

impl MaxPairMoments {
    /// The resulting Gaussian approximation `N(mean, variance)`.
    ///
    /// # Panics
    ///
    /// Never panics: `mean` and `variance` are finite by construction.
    pub fn to_normal(&self) -> Normal {
        Normal::new(self.mean, self.variance.max(0.0).sqrt())
            .expect("Clark moments are finite by construction")
    }
}

/// First two moments of `max(X1, X2)` for jointly Gaussian `X1`, `X2`
/// with correlation `rho` (paper eq. 5).
///
/// # Panics
///
/// Panics if `rho` is outside `[-1, 1]`.
///
/// ```
/// use vardelay_stats::{Normal, clark::max_pair_moments};
/// let x1 = Normal::new(0.0, 1.0)?;
/// let x2 = Normal::new(0.0, 1.0)?;
/// let m = max_pair_moments(x1, x2, 0.0);
/// // E[max of two iid standard normals] = 1/sqrt(pi).
/// assert!((m.mean - 0.5641895835477563).abs() < 1e-12);
/// # Ok::<(), vardelay_stats::NormalError>(())
/// ```
pub fn max_pair_moments(x1: Normal, x2: Normal, rho: f64) -> MaxPairMoments {
    assert!(
        (-1.0..=1.0).contains(&rho),
        "correlation must be in [-1, 1], got {rho}"
    );
    let (m1, s1) = (x1.mean(), x1.sd());
    let (m2, s2) = (x2.mean(), x2.sd());
    let a2 = (s1 * s1 + s2 * s2 - 2.0 * rho * s1 * s2).max(0.0);
    let a = a2.sqrt();

    if a < DEGENERATE_A_REL * (s1 + s2).max(f64::MIN_POSITIVE) {
        // The difference X1 - X2 is (numerically) deterministic: the max is
        // exactly the input with the larger mean.
        let (mean, sd, alpha) = if m1 >= m2 {
            (m1, s1, f64::INFINITY)
        } else {
            (m2, s2, f64::NEG_INFINITY)
        };
        return MaxPairMoments {
            mean,
            variance: sd * sd,
            a,
            alpha,
            p_first_larger: if m1 >= m2 { 1.0 } else { 0.0 },
        };
    }

    let alpha = (m1 - m2) / a;
    let cdf_a = cap_phi(alpha);
    let cdf_ma = cap_phi(-alpha);
    let pdf_a = phi(alpha);

    // eq. (5): first and second raw moments.
    let nu1 = m1 * cdf_a + m2 * cdf_ma + a * pdf_a;
    let nu2 = (m1 * m1 + s1 * s1) * cdf_a + (m2 * m2 + s2 * s2) * cdf_ma + (m1 + m2) * a * pdf_a;
    let variance = (nu2 - nu1 * nu1).max(0.0);

    MaxPairMoments {
        mean: nu1,
        variance,
        a,
        alpha,
        p_first_larger: cdf_a,
    }
}

/// Gaussian approximation of `max(X1, X2)` (paper eq. 5).
///
/// Convenience wrapper over [`max_pair_moments`].
///
/// # Panics
///
/// Panics if `rho` is outside `[-1, 1]`.
pub fn max_pair(x1: Normal, x2: Normal, rho: f64) -> Normal {
    max_pair_moments(x1, x2, rho).to_normal()
}

/// Correlation of a third Gaussian `X3` with `max(X1, X2)` (paper eq. 6).
///
/// `rho13`/`rho23` are the correlations of `X3` with `X1`/`X2`, and `m` is
/// the pairwise result from [`max_pair_moments`] on `(X1, X2)`.
///
/// Returns 0 when the max is (numerically) deterministic.
pub fn correlation_with_max(
    x1: Normal,
    x2: Normal,
    m: &MaxPairMoments,
    rho13: f64,
    rho23: f64,
) -> f64 {
    let sd_max = m.variance.max(0.0).sqrt();
    if sd_max < DEGENERATE_A_REL * (x1.sd() + x2.sd()).max(f64::MIN_POSITIVE) {
        return 0.0;
    }
    let cdf_a = cap_phi(m.alpha);
    let cdf_ma = cap_phi(-m.alpha);
    let raw = (x1.sd() * rho13 * cdf_a + x2.sd() * rho23 * cdf_ma) / sd_max;
    raw.clamp(-1.0, 1.0)
}

/// Gaussian approximation of `max(X_1, ..., X_n)` for jointly Gaussian
/// variables with the given correlation matrix (paper eq. 4).
///
/// The variables are folded two at a time. Following §2.4 of the paper, they
/// are processed in **increasing order of mean**, which empirically minimizes
/// the approximation error of re-Gaussianizing each pairwise max. After each
/// fold, the correlation of every remaining variable with the partial max is
/// updated with eq. (6).
///
/// # Panics
///
/// Panics if `vars` is empty or its length differs from the dimension of
/// `corr`.
///
/// ```
/// use vardelay_stats::{Normal, CorrelationMatrix, max_of};
/// let stages: Vec<Normal> = (0..5)
///     .map(|_| Normal::new(200.0, 10.0))
///     .collect::<Result<_, _>>()?;
/// let corr = CorrelationMatrix::uniform(5, 0.0)?;
/// let pipe = max_of(&stages, &corr);
/// // Max of 5 iid stages is clearly above any single stage mean.
/// assert!(pipe.mean() > 205.0 && pipe.mean() < 220.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn max_of(vars: &[Normal], corr: &CorrelationMatrix) -> Normal {
    // Sort indices by increasing mean (paper's error-minimizing ordering).
    let mut order: Vec<usize> = (0..vars.len()).collect();
    order.sort_by(|&i, &j| {
        vars[i]
            .mean()
            .partial_cmp(&vars[j].mean())
            .expect("finite means")
    });
    max_of_with_order(vars, corr, &order)
}

/// Like [`max_of`] but folding the variables in the caller-supplied order.
///
/// Exposed for ablation studies of the paper's §2.4 claim that processing
/// variables in increasing order of mean minimizes the modeling error —
/// pass a different permutation and compare against Monte-Carlo.
///
/// # Panics
///
/// Panics if `vars` is empty, the correlation dimension differs, or
/// `order` is not a permutation of `0..vars.len()`.
pub fn max_of_with_order(vars: &[Normal], corr: &CorrelationMatrix, order: &[usize]) -> Normal {
    assert!(!vars.is_empty(), "max_of requires at least one variable");
    assert_eq!(
        vars.len(),
        corr.dim(),
        "correlation matrix dimension {} does not match variable count {}",
        corr.dim(),
        vars.len()
    );
    {
        let mut seen = vec![false; vars.len()];
        assert_eq!(order.len(), vars.len(), "order must cover every variable");
        for &i in order {
            assert!(i < vars.len() && !seen[i], "order must be a permutation");
            seen[i] = true;
        }
    }
    if vars.len() == 1 {
        return vars[0];
    }

    // Remaining variables in processing order, plus their correlation with
    // the running partial max.
    let ordered: Vec<Normal> = order.iter().map(|&i| vars[i]).collect();

    // rho_with_partial[k] = corr(ordered[k], partial_max) for k not yet folded.
    let mut partial = ordered[0];
    let mut rho_with_partial: Vec<f64> = (1..ordered.len())
        .map(|k| corr.get(order[0], order[k]))
        .collect();

    for step in 1..ordered.len() {
        let x2 = ordered[step];
        let rho = rho_with_partial[step - 1];
        let m = max_pair_moments(partial, x2, rho);

        // Update correlations of all later variables with the new partial max
        // before overwriting `partial` (eq. 6 needs both inputs).
        for k in (step + 1)..ordered.len() {
            let rho_k_partial = rho_with_partial[k - 1];
            let rho_k_x2 = corr.get(order[step], order[k]);
            rho_with_partial[k - 1] =
                correlation_with_max(partial, x2, &m, rho_k_partial, rho_k_x2);
        }
        partial = m.to_normal();
    }
    partial
}

/// Exact mean of the max of two *independent* zero-mean unit-variance
/// Gaussians — handy reference constant for tests: `1/sqrt(pi)`.
pub const MAX_OF_TWO_IID_STD: f64 = 0.564_189_583_547_756_3;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::CorrelationMatrix;
    use crate::normal::sample_standard_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn n(mu: f64, sd: f64) -> Normal {
        Normal::new(mu, sd).unwrap()
    }

    #[test]
    fn iid_standard_pair_matches_closed_form() {
        let m = max_pair_moments(n(0.0, 1.0), n(0.0, 1.0), 0.0);
        assert!((m.mean - MAX_OF_TWO_IID_STD).abs() < 1e-12);
        // Var[max] = 1 - 1/pi for iid standard normals.
        assert!((m.variance - (1.0 - 1.0 / std::f64::consts::PI)).abs() < 1e-12);
    }

    #[test]
    fn perfectly_correlated_equal_sigma_is_exact_max_of_means() {
        let m = max_pair_moments(n(5.0, 2.0), n(3.0, 2.0), 1.0);
        assert!((m.mean - 5.0).abs() < 1e-12);
        assert!((m.variance - 4.0).abs() < 1e-12);
        assert_eq!(m.p_first_larger, 1.0);
    }

    #[test]
    fn dominated_variable_changes_nothing() {
        // X2 is 20 sigma below X1: max ≈ X1 exactly.
        let m = max_pair_moments(n(100.0, 1.0), n(60.0, 1.0), 0.0);
        assert!((m.mean - 100.0).abs() < 1e-9);
        assert!((m.variance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_is_symmetric_in_arguments() {
        let a = n(10.0, 2.0);
        let b = n(12.0, 3.0);
        let m1 = max_pair_moments(a, b, 0.4);
        let m2 = max_pair_moments(b, a, 0.4);
        assert!((m1.mean - m2.mean).abs() < 1e-12);
        assert!((m1.variance - m2.variance).abs() < 1e-12);
    }

    #[test]
    fn mean_of_max_exceeds_max_of_means() {
        // Jensen (paper eq. 3): E[max] >= max(E[..]).
        let m = max_pair_moments(n(10.0, 2.0), n(9.5, 2.0), 0.2);
        assert!(m.mean >= 10.0);
    }

    #[test]
    #[should_panic(expected = "correlation must be in")]
    fn rejects_bad_rho() {
        let _ = max_pair_moments(n(0.0, 1.0), n(0.0, 1.0), 1.5);
    }

    #[test]
    fn pairwise_against_monte_carlo() {
        let x1 = n(100.0, 8.0);
        let x2 = n(104.0, 5.0);
        let rho = 0.35;
        let m = max_pair_moments(x1, x2, rho);

        let mut rng = StdRng::seed_from_u64(7);
        let trials = 400_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..trials {
            let z1 = sample_standard_normal(&mut rng);
            let zc = sample_standard_normal(&mut rng);
            let z2 = rho * z1 + (1.0 - rho * rho).sqrt() * zc;
            let v = (100.0 + 8.0 * z1).max(104.0 + 5.0 * z2);
            sum += v;
            sum2 += v * v;
        }
        let mc_mean = sum / trials as f64;
        let mc_var = sum2 / trials as f64 - mc_mean * mc_mean;
        assert!(
            (m.mean - mc_mean).abs() < 0.05,
            "mean: clark {} vs mc {}",
            m.mean,
            mc_mean
        );
        assert!(
            (m.variance.sqrt() - mc_var.sqrt()).abs() < 0.08,
            "sd: clark {} vs mc {}",
            m.variance.sqrt(),
            mc_var.sqrt()
        );
    }

    #[test]
    fn correlation_with_max_limits() {
        let x1 = n(0.0, 1.0);
        let x2 = n(-30.0, 1.0); // dominated
        let m = max_pair_moments(x1, x2, 0.0);
        // max ≈ x1, so corr(x3, max) ≈ rho13.
        let r = correlation_with_max(x1, x2, &m, 0.7, -0.2);
        assert!((r - 0.7).abs() < 1e-6, "got {r}");
    }

    #[test]
    fn max_of_single_variable_is_identity() {
        let v = [n(3.0, 0.5)];
        let c = CorrelationMatrix::identity(1);
        let m = max_of(&v, &c);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.sd(), 0.5);
    }

    #[test]
    fn max_of_iid_grows_with_n_and_variance_shrinks() {
        // E[max] grows ~ sqrt(2 ln n); Var[max] decreases with n.
        let mut prev_mean = f64::NEG_INFINITY;
        let mut prev_var = f64::INFINITY;
        for count in [2usize, 4, 8, 16, 32] {
            let vars: Vec<Normal> = (0..count).map(|_| n(0.0, 1.0)).collect();
            let c = CorrelationMatrix::identity(count);
            let m = max_of(&vars, &c);
            assert!(m.mean() > prev_mean, "mean should grow with n");
            assert!(m.variance() < prev_var, "variance should shrink with n");
            prev_mean = m.mean();
            prev_var = m.variance();
        }
    }

    #[test]
    fn max_of_perfectly_correlated_equals_slowest_stage() {
        // Inter-die-only variation: all stages move together, the pipeline
        // delay is exactly the slowest stage's distribution.
        let vars = [n(190.0, 20.0), n(200.0, 20.0), n(185.0, 20.0)];
        let c = CorrelationMatrix::uniform(3, 1.0).unwrap();
        let m = max_of(&vars, &c);
        assert!((m.mean() - 200.0).abs() < 1e-9);
        assert!((m.sd() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn max_of_independent_matches_exact_cdf_product() {
        // For independent stages the exact yield is prod Phi((t-mu)/sd)
        // (paper eq. 8); Clark's Gaussian approximation of the max should
        // produce a CDF close to it near the body of the distribution.
        let vars = [n(200.0, 4.0), n(198.0, 3.0), n(202.0, 5.0), n(195.0, 6.0)];
        let c = CorrelationMatrix::identity(4);
        let approx = max_of(&vars, &c);
        for t in [200.0, 205.0, 210.0, 215.0] {
            let exact: f64 = vars.iter().map(|v| v.cdf(t)).product();
            let got = approx.cdf(t);
            // Clark's re-Gaussianization carries an inherent body error of a
            // few percent for 4 independent variables (paper Fig. 3a).
            assert!(
                (exact - got).abs() < 0.04,
                "t={t}: exact {exact} vs clark {got}"
            );
        }
    }

    #[test]
    fn max_of_against_correlated_monte_carlo() {
        let vars = [n(100.0, 6.0), n(102.0, 4.0), n(98.0, 8.0), n(101.0, 5.0)];
        let rho = 0.5;
        let c = CorrelationMatrix::uniform(4, rho).unwrap();
        let analytic = max_of(&vars, &c);

        // Equi-correlated sampling: X_i = sqrt(rho) * g + sqrt(1-rho) * z_i.
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 300_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..trials {
            let g = sample_standard_normal(&mut rng);
            let mut mx = f64::NEG_INFINITY;
            for v in &vars {
                let z = sample_standard_normal(&mut rng);
                let x = v.mean() + v.sd() * (rho.sqrt() * g + (1.0 - rho).sqrt() * z);
                mx = mx.max(x);
            }
            sum += mx;
            sum2 += mx * mx;
        }
        let mc_mean = sum / trials as f64;
        let mc_sd = (sum2 / trials as f64 - mc_mean * mc_mean).sqrt();
        // Paper reports < 0.2% mean error and < 3% sd error in this regime.
        assert!(
            ((analytic.mean() - mc_mean) / mc_mean).abs() < 0.002,
            "mean: {} vs {}",
            analytic.mean(),
            mc_mean
        );
        assert!(
            ((analytic.sd() - mc_sd) / mc_sd).abs() < 0.05,
            "sd: {} vs {}",
            analytic.sd(),
            mc_sd
        );
    }
}
