//! Stratified-sampling permutations and importance-sampling estimator
//! math for the trial-plan contracts.
//!
//! The stratified (Latin-hypercube) trial plan partitions the unit
//! interval into `n` equal strata per leading dimension and assigns each
//! trial of a block exactly one stratum per dimension. The assignment is
//! a keyed permutation — a pure function of `(stream key, block, dim)` —
//! so shards and resumed runs reproduce it without coordination, and
//! different dimensions use independent permutations (the Latin
//! hypercube property).
//!
//! The blockade (importance-sampling) plan shifts the inter-die normal
//! toward the failure region and reweights; the self-normalized
//! estimator and its delta-method confidence interval live here so the
//! Monte-Carlo and reporting layers share one audited implementation.

use crate::mix::splitmix64_mix;

/// Two-sided 95% normal critical value (matches the Wilson interval used
/// by the binomial yield estimator).
const Z_95: f64 = 1.959_963_984_540_054;

/// A keyed bijection on `0..256` (4-round Feistel on two 4-bit halves).
///
/// Used to assign block-local trial slots to strata: for a fixed `key`
/// every `j` in `0..=255` maps to a distinct stratum, so a full block
/// covers every stratum exactly once per dimension.
#[must_use]
pub fn permute256(key: u64, j: u8) -> u8 {
    let mut l = j >> 4;
    let mut r = j & 0x0f;
    for round in 0..4u64 {
        let f = (splitmix64_mix(key ^ (round << 8) ^ u64::from(r)) & 0x0f) as u8;
        let new_r = l ^ f;
        l = r;
        r = new_r;
    }
    (l << 4) | r
}

/// The permutation key for `(stream key, block, dim)`: independent keys
/// per dimension give the Latin-hypercube property, and folding the
/// block index in re-randomizes stratum assignment from block to block.
#[must_use]
pub fn stratum_key(stream_key: u64, block: u64, dim: usize) -> u64 {
    splitmix64_mix(
        stream_key
            ^ block.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (dim as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f),
    )
}

/// A uniform variate from stratum `slot` of `n` equal strata, jittered
/// by `jitter` in `[0, 1)`: `(slot + jitter) / n`, clamped into the open
/// unit interval so it can feed a quantile function directly.
#[must_use]
pub fn stratified_uniform(slot: u64, jitter: f64, n: u64) -> f64 {
    let u = (slot as f64 + jitter) / n as f64;
    u.clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON / 2.0)
}

/// The likelihood ratio of a mean-shifted normal draw: a standard-normal
/// sample `z` reported at the shifted location `z + shift` carries
/// weight `exp(-shift * z - shift^2 / 2)` so reweighted averages remain
/// unbiased for the unshifted distribution.
#[must_use]
pub fn mean_shift_weight(shift: f64, z: f64) -> f64 {
    (-shift * z - 0.5 * shift * shift).exp()
}

/// Unnormalized importance-sampling estimate of a failure fraction,
/// with a 95% confidence half-width.
///
/// Inputs are the trial count and the weight sums restricted to
/// *failing* trials: `fail_w = sum w_i 1{fail_i}` and
/// `fail_w2 = sum w_i^2 1{fail_i}`. Returns `(p_hat, half_width)` with
/// `p_hat = fail_w / n` — exactly unbiased, since `E[w] = 1` under the
/// shifted sampler — and the half-width from the sample variance of
/// `w_i 1{fail_i}`, which reduces to the binomial normal approximation
/// for unit weights.
///
/// The unnormalized form is deliberate: under a mean shift *toward* the
/// failure region, failing trials carry small bounded weights
/// (`w <= exp(-shift^2/2)` at the shift point and beyond), while the
/// handful of huge weights live on the never-failing side — a
/// self-normalized ratio estimator would drag those into its
/// denominator and inherit their variance (and finite-sample bias) for
/// nothing.
#[must_use]
pub fn weighted_fraction_ci(n_trials: f64, fail_w: f64, fail_w2: f64) -> (f64, f64) {
    if n_trials <= 0.0 {
        return (0.0, 0.5);
    }
    let p = (fail_w / n_trials).clamp(0.0, 1.0);
    let var = ((fail_w2 / n_trials - p * p) / n_trials).max(0.0);
    (p, Z_95 * var.sqrt())
}

/// Kish effective sample size `(sum w)^2 / sum w^2` of a weighted
/// sample: the number of equally-weighted trials carrying the same
/// information. Equals the trial count when all weights are 1.
#[must_use]
pub fn effective_sample_size(sum_w: f64, sum_w2: f64) -> f64 {
    if sum_w2 <= 0.0 {
        return 0.0;
    }
    sum_w * sum_w / sum_w2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permute256_is_a_bijection_for_any_key() {
        for key in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let mut seen = [false; 256];
            for j in 0..=255u8 {
                let p = permute256(key, j);
                assert!(!seen[p as usize], "key {key:#x}: duplicate image {p}");
                seen[p as usize] = true;
            }
        }
    }

    #[test]
    fn stratum_coverage_is_exact_per_block_and_dimension() {
        // ISSUE 9 satellite: stratum coverage exactness. A full block of
        // 256 trials must land exactly once in each of 256 strata, in
        // every dimension, for any block index.
        for block in [0u64, 1, 77] {
            for dim in 0..3 {
                let key = stratum_key(0x5EED, block, dim);
                let mut seen = [false; 256];
                for j in 0..=255u8 {
                    let slot = u64::from(permute256(key, j));
                    let u = stratified_uniform(slot, 0.5, 256);
                    let cell = (u * 256.0) as usize;
                    assert!(
                        !seen[cell],
                        "block {block} dim {dim}: stratum {cell} reused"
                    );
                    seen[cell] = true;
                }
            }
        }
    }

    #[test]
    fn dimensions_use_distinct_permutations() {
        let a = stratum_key(1, 0, 0);
        let b = stratum_key(1, 0, 1);
        let differs = (0..=255u8).any(|j| permute256(a, j) != permute256(b, j));
        assert!(differs, "dims 0 and 1 share a permutation");
    }

    #[test]
    fn stratified_uniform_stays_open() {
        assert!(stratified_uniform(0, 0.0, 256) > 0.0);
        assert!(stratified_uniform(255, 1.0 - 1e-16, 256) < 1.0);
    }

    #[test]
    fn mean_shift_weight_integrates_to_one() {
        // E[w(Z)] over Z ~ N(0,1) is exactly 1 for any shift; check by
        // midpoint quadrature over a wide range.
        for shift in [0.5, 1.5, 3.0] {
            let mut total = 0.0;
            let n = 20_000;
            for i in 0..n {
                let z = -10.0 + 20.0 * (i as f64 + 0.5) / n as f64;
                total += mean_shift_weight(shift, z) * crate::normal::phi(z) * (20.0 / n as f64);
            }
            assert!((total - 1.0).abs() < 1e-6, "shift {shift}: {total}");
        }
    }

    #[test]
    fn weighted_ci_reduces_to_binomial_for_unit_weights() {
        // 1000 trials, 50 failures, all weights 1: p = 0.05 and the
        // half-width matches the normal-approximation binomial width.
        let n = 1000.0;
        let fails = 50.0;
        let (p, hw) = weighted_fraction_ci(n, fails, fails);
        assert!((p - 0.05).abs() < 1e-12);
        let expect = Z_95 * (0.05 * 0.95 / n).sqrt();
        assert!((hw - expect).abs() < 1e-9, "hw {hw} vs {expect}");
        assert!((effective_sample_size(n, n) - n).abs() < 1e-9);
    }

    #[test]
    fn weighted_estimator_is_unbiased_under_a_mean_shift() {
        // Estimate Pr{Z > 3} by sampling Z' = Z + 3 and reweighting:
        // quadrature over the shifted density must recover the exact
        // tail probability with a small half-width.
        let shift = 3.0;
        let b = 3.0;
        let n = 50_000.0;
        let (mut fail_w, mut fail_w2) = (0.0, 0.0);
        let steps = 40_000;
        for i in 0..steps {
            // z' ~ N(shift, 1) by quadrature; pre-shift z = z' - shift.
            let zp = shift - 10.0 + 20.0 * (i as f64 + 0.5) / steps as f64;
            let density = crate::normal::phi(zp - shift) * (20.0 / steps as f64);
            if zp > b {
                let w = mean_shift_weight(shift, zp - shift);
                fail_w += n * density * w;
                fail_w2 += n * density * w * w;
            }
        }
        let (p, hw) = weighted_fraction_ci(n, fail_w, fail_w2);
        let truth = 1.0 - crate::normal::cap_phi(b);
        assert!((p - truth).abs() / truth < 1e-4, "p {p} vs {truth}");
        assert!(hw < truth / 10.0, "half-width {hw} too wide for {truth}");
    }

    #[test]
    fn degenerate_sums_do_not_blow_up() {
        let (p, hw) = weighted_fraction_ci(0.0, 0.0, 0.0);
        assert_eq!(p, 0.0);
        assert_eq!(hw, 0.5);
        assert_eq!(effective_sample_size(0.0, 0.0), 0.0);
    }
}
