//! Sobol low-discrepancy sequences with counter-based digital-shift
//! scrambling.
//!
//! The quasi-Monte-Carlo trial plan replaces the leading (die-level)
//! standard-normal draws of each trial with quantile-transformed Sobol
//! points. The sequence is generated from hand-rolled direction numbers
//! (primitive polynomials over GF(2) with odd initial values, the
//! classic Sobol'/Joe–Kuo construction), so no external tables or crates
//! are needed. Points are addressed randomly by *global trial index* via
//! the binary-expansion XOR form — not the Gray-code increment form — so
//! any shard can produce its own slice of the sequence without
//! coordination, matching the counter-based seeding discipline used
//! everywhere else in the workspace.
//!
//! Scrambling is a per-dimension digital shift (XOR with a fixed 32-bit
//! mask derived from the scenario's counter stream). A digital shift
//! preserves the net structure of the sequence — and therefore its
//! low-discrepancy guarantees — while decorrelating scenarios that share
//! a trial plan.

use crate::mix::splitmix64_mix;

/// Number of dimensions the embedded direction-number table supports.
///
/// Trial plans cap the quasi-random (or stratified) dimensions at this
/// value; deeper dimensions fall back to the plain counter-based stream,
/// which is where QMC stops paying off anyway.
pub const SOBOL_MAX_DIMS: usize = 16;

/// Bits of precision per coordinate (and the index-space limit `2^32`).
const SOBOL_BITS: usize = 32;

/// Primitive polynomial + initial direction numbers for one dimension:
/// `(degree s, interior coefficients a, m_1..m_s)`. The first dimension
/// (van der Corput) is handled specially and is not listed here.
///
/// Polynomials are primitive over GF(2) (`a` encodes the coefficients of
/// `x^{s-1}..x^1`; leading and trailing coefficients are implicit 1s) and
/// every `m_i` is odd with `m_i < 2^i`, the two conditions the Sobol'
/// construction requires.
const DIRECTION_SEEDS: [(u32, u32, [u32; 6]); SOBOL_MAX_DIMS - 1] = [
    (1, 0, [1, 0, 0, 0, 0, 0]),
    (2, 1, [1, 3, 0, 0, 0, 0]),
    (3, 1, [1, 3, 1, 0, 0, 0]),
    (3, 2, [1, 1, 1, 0, 0, 0]),
    (4, 1, [1, 1, 3, 3, 0, 0]),
    (4, 4, [1, 3, 5, 13, 0, 0]),
    (5, 2, [1, 1, 5, 5, 17, 0]),
    (5, 4, [1, 1, 5, 5, 5, 0]),
    (5, 7, [1, 1, 7, 11, 19, 0]),
    (5, 11, [1, 1, 5, 1, 1, 0]),
    (5, 13, [1, 1, 1, 3, 11, 0]),
    (5, 14, [1, 3, 5, 5, 31, 0]),
    (6, 1, [1, 3, 3, 9, 7, 49]),
    (6, 13, [1, 1, 1, 15, 21, 21]),
    (6, 16, [1, 3, 1, 13, 27, 49]),
];

/// Direction numbers for up to [`SOBOL_MAX_DIMS`] dimensions, expanded
/// once at construction from the embedded seeds.
#[derive(Debug, Clone)]
pub struct SobolSequence {
    /// `v[dim][bit]`: the direction number XORed in when `bit` of the
    /// point index is set.
    v: Vec<[u32; SOBOL_BITS]>,
}

impl SobolSequence {
    /// Expands direction numbers for `dims` dimensions (clamped to
    /// [`SOBOL_MAX_DIMS`]).
    #[must_use]
    pub fn new(dims: usize) -> Self {
        let dims = dims.min(SOBOL_MAX_DIMS);
        let mut v = Vec::with_capacity(dims);
        for dim in 0..dims {
            v.push(direction_numbers(dim));
        }
        Self { v }
    }

    /// Number of dimensions this table covers.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.v.len()
    }

    /// The raw 32-bit Sobol coordinate for `(dim, index)`.
    ///
    /// Random access: XORs the direction numbers selected by the binary
    /// expansion of `index`, so shards can evaluate disjoint index
    /// ranges independently. Indices at or above `2^32` wrap (the
    /// workspace trial cap sits far below that).
    #[must_use]
    pub fn point_u32(&self, dim: usize, index: u64) -> u32 {
        let mut bits = index as u32;
        let table = &self.v[dim];
        let mut x = 0u32;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            x ^= table[j];
            bits &= bits - 1;
        }
        x
    }

    /// The digitally-shifted coordinate mapped into the open unit
    /// interval: `((x ^ shift) + 0.5) / 2^32`, never exactly 0 or 1, so
    /// it is safe to feed straight into a quantile function.
    #[must_use]
    pub fn scrambled_uniform(&self, dim: usize, index: u64, shift: u32) -> f64 {
        (f64::from(self.point_u32(dim, index) ^ shift) + 0.5) * (1.0 / 4_294_967_296.0)
    }
}

/// A per-dimension 32-bit digital-shift mask derived from a scenario
/// stream key, so two scenarios sharing a Sobol plan still draw
/// decorrelated point sets.
#[must_use]
pub fn sobol_shift(stream_key: u64, dim: usize) -> u32 {
    (splitmix64_mix(stream_key ^ 0x0005_0B01_D1F7_u64.wrapping_add(dim as u64)) >> 32) as u32
}

/// Expands the direction numbers for one dimension.
fn direction_numbers(dim: usize) -> [u32; SOBOL_BITS] {
    let mut m = [0u32; SOBOL_BITS];
    if dim == 0 {
        // Van der Corput in base 2: m_i = 1 for all i.
        m = [1; SOBOL_BITS];
    } else {
        let (s, a, seeds) = DIRECTION_SEEDS[dim - 1];
        let s = s as usize;
        m[..s].copy_from_slice(&seeds[..s]);
        for i in s..SOBOL_BITS {
            // m_i = m_{i-s} ^ (m_{i-s} << s) ^ sum_k a_k (m_{i-k} << k)
            let mut mi = m[i - s] ^ (m[i - s] << s);
            for k in 1..s {
                if (a >> (s - 1 - k)) & 1 == 1 {
                    mi ^= m[i - k] << k;
                }
            }
            m[i] = mi;
        }
    }
    let mut v = [0u32; SOBOL_BITS];
    for (i, vi) in v.iter_mut().enumerate() {
        *vi = m[i] << (SOBOL_BITS - 1 - i);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_seeds_satisfy_sobol_preconditions() {
        for (s, a, seeds) in DIRECTION_SEEDS {
            assert!(a < (1 << (s.saturating_sub(1)).max(1)) || s == 1);
            for (i, &mi) in seeds[..s as usize].iter().enumerate() {
                assert_eq!(mi % 2, 1, "m_{} must be odd", i + 1);
                assert!(mi < (2 << i), "m_{} = {mi} out of range", i + 1);
            }
        }
    }

    #[test]
    fn first_dimension_is_van_der_corput() {
        let s = SobolSequence::new(1);
        // Index i reversed in base 2: 1 -> 0.5, 2 -> 0.25, 3 -> 0.75.
        assert_eq!(s.point_u32(0, 0), 0);
        assert_eq!(s.point_u32(0, 1), 1 << 31);
        assert_eq!(s.point_u32(0, 2), 1 << 30);
        assert_eq!(s.point_u32(0, 3), (1 << 31) | (1 << 30));
    }

    #[test]
    fn every_dimension_equidistributes_dyadic_intervals() {
        // The defining (0, m, 1)-net property in each single dimension:
        // the first 2^k points land exactly once in each of the 2^k
        // dyadic subintervals. This holds for any valid Sobol'
        // direction-number set and fails for a broken recurrence.
        let s = SobolSequence::new(SOBOL_MAX_DIMS);
        for dim in 0..s.dims() {
            let k = 6u32;
            let cells = 1u64 << k;
            let mut seen = vec![0u32; cells as usize];
            for i in 0..cells {
                let cell = (u64::from(s.point_u32(dim, i)) * cells) >> 32;
                seen[cell as usize] += 1;
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "dim {dim} not equidistributed: {seen:?}"
            );
        }
    }

    #[test]
    fn pairs_of_dimensions_stratify_jointly() {
        // 2-d projections of a (t,s)-net fill a coarse grid far more
        // evenly than iid uniforms: with 256 points on a 4x4 grid every
        // cell must be hit close to 16 times.
        let s = SobolSequence::new(SOBOL_MAX_DIMS);
        for da in 0..s.dims() {
            for db in (da + 1)..s.dims() {
                let mut cells = [0u32; 16];
                for i in 0..256u64 {
                    let a = (u64::from(s.point_u32(da, i)) * 4) >> 32;
                    let b = (u64::from(s.point_u32(db, i)) * 4) >> 32;
                    cells[(a * 4 + b) as usize] += 1;
                }
                for (c, &n) in cells.iter().enumerate() {
                    assert!((8..=24).contains(&n), "dims ({da},{db}) cell {c}: {n} hits");
                }
            }
        }
    }

    #[test]
    fn digital_shift_preserves_equidistribution() {
        let s = SobolSequence::new(4);
        let shift = sobol_shift(0xDEAD_BEEF, 2);
        let cells = 64u64;
        let mut seen = vec![0u32; cells as usize];
        for i in 0..cells {
            let u = s.scrambled_uniform(2, i, shift);
            assert!(u > 0.0 && u < 1.0);
            let cell = (u * cells as f64) as usize;
            seen[cell] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn sobol_beats_plain_mc_on_a_smooth_integrand() {
        // Integrate f(u) = prod_d (1 + (u_d - 0.5)) over [0,1]^6; the
        // exact value is 1. QMC error at n = 4096 must beat the plain
        // counter-based MC estimate by a wide margin (ISSUE 9 satellite:
        // low-discrepancy bound vs plain MC on a known integrand).
        const DIMS: usize = 6;
        const N: u64 = 4096;
        let s = SobolSequence::new(DIMS);
        let shifts: Vec<u32> = (0..DIMS).map(|d| sobol_shift(7, d)).collect();
        let mut qmc = 0.0;
        let mut mc = 0.0;
        for i in 0..N {
            let mut fq = 1.0;
            let mut fm = 1.0;
            for (d, &shift) in shifts.iter().enumerate() {
                fq *= 1.0 + (s.scrambled_uniform(d, i, shift) - 0.5);
                let raw = splitmix64_mix(crate::mix::counter_seed(11, i) ^ (d as u64) << 40);
                fm *= 1.0 + (crate::batch::uniform_open_from_u64(raw) - 0.5);
            }
            qmc += fq;
            mc += fm;
        }
        let qmc_err = (qmc / N as f64 - 1.0).abs();
        let mc_err = (mc / N as f64 - 1.0).abs();
        assert!(
            qmc_err * 4.0 < mc_err,
            "qmc {qmc_err:.2e} vs mc {mc_err:.2e}"
        );
        assert!(qmc_err < 2e-3, "qmc error too large: {qmc_err:.2e}");
    }
}
