//! Multivariate normal sampling.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::correlation::CorrelationMatrix;
use crate::matrix::{Cholesky, MatrixError, SymMatrix};
use crate::normal::sample_standard_normal;

/// Error constructing a [`MultivariateNormal`].
#[derive(Debug, Clone, PartialEq)]
pub enum MvnError {
    /// Mean vector length does not match the covariance dimension.
    DimensionMismatch {
        /// Mean length.
        mean_len: usize,
        /// Covariance dimension.
        cov_dim: usize,
    },
    /// The covariance matrix could not be factorized.
    Factorization(MatrixError),
}

impl fmt::Display for MvnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MvnError::DimensionMismatch { mean_len, cov_dim } => write!(
                f,
                "mean length {mean_len} does not match covariance dimension {cov_dim}"
            ),
            MvnError::Factorization(e) => write!(f, "covariance factorization failed: {e}"),
        }
    }
}

impl std::error::Error for MvnError {}

/// A multivariate normal distribution `N(mean, cov)` ready for sampling.
///
/// The covariance is Cholesky-factorized once at construction; each sample
/// costs one `L z` transform. Singular PSD covariances (e.g. perfectly
/// correlated pipeline stages) are supported.
///
/// ```
/// use vardelay_stats::{CorrelationMatrix, MultivariateNormal};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let corr = CorrelationMatrix::uniform(3, 0.8)?;
/// let mvn = MultivariateNormal::from_correlation(
///     &[200.0, 210.0, 205.0], &[5.0, 6.0, 4.0], &corr)?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = mvn.sample(&mut rng);
/// assert_eq!(x.len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultivariateNormal {
    mean: Vec<f64>,
    chol: Cholesky,
}

impl MultivariateNormal {
    /// Builds from a mean vector and covariance matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MvnError`] on dimension mismatch or a non-PSD covariance.
    pub fn new(mean: &[f64], cov: &SymMatrix) -> Result<Self, MvnError> {
        if mean.len() != cov.dim() {
            return Err(MvnError::DimensionMismatch {
                mean_len: mean.len(),
                cov_dim: cov.dim(),
            });
        }
        let chol = cov.cholesky(0.0).map_err(MvnError::Factorization)?;
        Ok(MultivariateNormal {
            mean: mean.to_vec(),
            chol,
        })
    }

    /// Builds from per-variable means, standard deviations, and a
    /// correlation matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MvnError`] on dimension mismatch or non-PSD correlation.
    pub fn from_correlation(
        mean: &[f64],
        sds: &[f64],
        corr: &CorrelationMatrix,
    ) -> Result<Self, MvnError> {
        if mean.len() != corr.dim() || sds.len() != corr.dim() {
            return Err(MvnError::DimensionMismatch {
                mean_len: mean.len(),
                cov_dim: corr.dim(),
            });
        }
        let cov = corr.to_covariance(sds);
        Self::new(mean, &cov)
    }

    /// The dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The mean vector.
    #[inline]
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Draws one correlated sample vector.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let z: Vec<f64> = (0..self.dim())
            .map(|_| sample_standard_normal(rng))
            .collect();
        let mut y = self.chol.transform(&z);
        for (yi, mi) in y.iter_mut().zip(&self.mean) {
            *yi += mi;
        }
        y
    }

    /// Allocation-free variant of [`MultivariateNormal::sample`]: draws
    /// one correlated vector into `out`, using `z` as scratch for the
    /// iid normals. Both buffers are resized on first use; the RNG
    /// consumption and arithmetic are identical to `sample`, so the two
    /// produce bit-identical vectors from the same stream.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, z: &mut Vec<f64>, out: &mut Vec<f64>) {
        z.resize(self.dim(), 0.0);
        out.resize(self.dim(), 0.0);
        for zi in z.iter_mut() {
            *zi = sample_standard_normal(rng);
        }
        self.chol.transform_into(z, out);
        for (yi, mi) in out.iter_mut().zip(&self.mean) {
            *yi += mi;
        }
    }

    /// The **v2-kernel** correlated sampler: like
    /// [`MultivariateNormal::sample_into`] but the iid normals come from
    /// the batch pair-producing Box–Muller fill
    /// ([`crate::batch::fill_standard_normals_bm`]) — half of v1's
    /// uniform consumption, different (but equally deterministic) bytes.
    /// Used by Monte-Carlo surfaces that run under the versioned `v2`
    /// trial-kernel contract; v1 callers must keep using `sample` /
    /// `sample_into`.
    pub fn sample_into_v2<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        z: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) {
        z.resize(self.dim(), 0.0);
        out.resize(self.dim(), 0.0);
        crate::batch::fill_standard_normals_bm(rng, z);
        self.chol.transform_into(z, out);
        for (yi, mi) in out.iter_mut().zip(&self.mean) {
            *yi += mi;
        }
    }

    /// The **trial-plan** correlated sampler: like
    /// [`MultivariateNormal::sample_into`] but with the strategy
    /// modifications overlaid on the iid normals before the Cholesky
    /// transform — each `z_d` becomes `sign * lead.get(d).unwrap_or(drawn)`
    /// (the RNG is consumed exactly as the plain sampler), and when
    /// `shift != 0` the first normal is mean-shifted by `shift` with the
    /// likelihood-ratio weight returned. The plain plan must keep using
    /// `sample` / `sample_into`, whose bytes are frozen.
    pub fn sample_into_plan<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sign: f64,
        lead: &[f64],
        shift: f64,
        z: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> f64 {
        z.resize(self.dim(), 0.0);
        out.resize(self.dim(), 0.0);
        for (d, zi) in z.iter_mut().enumerate() {
            let drawn = sample_standard_normal(rng);
            *zi = sign * lead.get(d).copied().unwrap_or(drawn);
        }
        let weight = self.apply_shift(shift, z);
        self.chol.transform_into(z, out);
        for (yi, mi) in out.iter_mut().zip(&self.mean) {
            *yi += mi;
        }
        weight
    }

    /// The **trial-plan** sampler under the v2 kernel: the batch
    /// Box–Muller fill of [`MultivariateNormal::sample_into_v2`] with the
    /// same modification overlay as
    /// [`MultivariateNormal::sample_into_plan`]. Returns the trial's
    /// importance weight.
    pub fn sample_into_v2_plan<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sign: f64,
        lead: &[f64],
        shift: f64,
        z: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> f64 {
        z.resize(self.dim(), 0.0);
        out.resize(self.dim(), 0.0);
        crate::batch::fill_standard_normals_bm(rng, z);
        for (zi, &l) in z.iter_mut().zip(lead) {
            *zi = l;
        }
        if sign != 1.0 {
            for zi in z.iter_mut() {
                *zi *= sign;
            }
        }
        let weight = self.apply_shift(shift, z);
        self.chol.transform_into(z, out);
        for (yi, mi) in out.iter_mut().zip(&self.mean) {
            *yi += mi;
        }
        weight
    }

    /// The **v3-kernel** correlated sampler: like
    /// [`MultivariateNormal::sample_into_v2`] but the iid normals come
    /// from the batch inverse-CDF fill
    /// ([`crate::batch::fill_standard_normals_inv_cdf`]) — one uniform
    /// per normal through a branch-free transform, different (but
    /// equally deterministic) bytes than both v1 and v2. Used by
    /// Monte-Carlo surfaces running under the versioned `v3` wide-kernel
    /// contract.
    pub fn sample_into_v3<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        z: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) {
        z.resize(self.dim(), 0.0);
        out.resize(self.dim(), 0.0);
        crate::batch::fill_standard_normals_inv_cdf(rng, z);
        self.chol.transform_into(z, out);
        for (yi, mi) in out.iter_mut().zip(&self.mean) {
            *yi += mi;
        }
    }

    /// The **trial-plan** sampler under the v3 kernel: the batch
    /// inverse-CDF fill of [`MultivariateNormal::sample_into_v3`] with
    /// the same modification overlay as
    /// [`MultivariateNormal::sample_into_plan`]. Returns the trial's
    /// importance weight.
    pub fn sample_into_v3_plan<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sign: f64,
        lead: &[f64],
        shift: f64,
        z: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> f64 {
        z.resize(self.dim(), 0.0);
        out.resize(self.dim(), 0.0);
        crate::batch::fill_standard_normals_inv_cdf(rng, z);
        for (zi, &l) in z.iter_mut().zip(lead) {
            *zi = l;
        }
        if sign != 1.0 {
            for zi in z.iter_mut() {
                *zi *= sign;
            }
        }
        let weight = self.apply_shift(shift, z);
        self.chol.transform_into(z, out);
        for (yi, mi) in out.iter_mut().zip(&self.mean) {
            *yi += mi;
        }
        weight
    }

    /// Mean-shifts `z[0]` by `shift` sigmas and returns the likelihood
    /// ratio (1.0 when `shift == 0` or the distribution is empty).
    fn apply_shift(&self, shift: f64, z: &mut [f64]) -> f64 {
        if shift == 0.0 || z.is_empty() {
            return 1.0;
        }
        let w = crate::strata::mean_shift_weight(shift, z[0]);
        z[0] += shift;
        w
    }

    /// Draws `n` samples, returned row-wise.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Draws `n` samples of `max_i X_i` — the Monte-Carlo estimate of the
    /// pipeline-delay distribution used to validate Clark's approximation.
    pub fn sample_max_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| {
                self.sample(rng)
                    .into_iter()
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect()
    }
}

/// A `SampleStats` summary of empirical mean/sd per dimension plus the
/// empirical correlation — diagnostics used by tests and the harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleStats {
    /// Per-dimension sample means.
    pub mean: Vec<f64>,
    /// Per-dimension sample standard deviations.
    pub sd: Vec<f64>,
}

/// Computes per-dimension mean and standard deviation of row-wise samples.
///
/// # Panics
///
/// Panics if `samples` is empty or rows are ragged.
pub fn sample_stats(samples: &[Vec<f64>]) -> SampleStats {
    assert!(!samples.is_empty(), "need at least one sample");
    let d = samples[0].len();
    let n = samples.len() as f64;
    let mut mean = vec![0.0; d];
    for s in samples {
        assert_eq!(s.len(), d, "ragged sample rows");
        for (m, x) in mean.iter_mut().zip(s) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    let mut var = vec![0.0; d];
    for s in samples {
        for ((v, x), m) in var.iter_mut().zip(s).zip(&mean) {
            *v += (x - m) * (x - m);
        }
    }
    let sd = var.iter().map(|v| (v / (n - 1.0)).sqrt()).collect();
    SampleStats { mean, sd }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dimensions_validated() {
        let corr = CorrelationMatrix::identity(2);
        assert!(matches!(
            MultivariateNormal::from_correlation(&[0.0], &[1.0, 1.0], &corr),
            Err(MvnError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn samples_match_moments_and_correlation() {
        let corr = CorrelationMatrix::uniform(3, 0.6).unwrap();
        let mvn =
            MultivariateNormal::from_correlation(&[10.0, 20.0, 30.0], &[1.0, 2.0, 3.0], &corr)
                .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let xs = mvn.sample_n(&mut rng, 100_000);
        let st = sample_stats(&xs);
        for (got, want) in st.mean.iter().zip([10.0, 20.0, 30.0]) {
            assert!((got - want).abs() < 0.05, "mean {got} vs {want}");
        }
        for (got, want) in st.sd.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 0.05, "sd {got} vs {want}");
        }
        // Empirical correlation of dims 0 and 1.
        let m0 = st.mean[0];
        let m1 = st.mean[1];
        let cov01: f64 =
            xs.iter().map(|s| (s[0] - m0) * (s[1] - m1)).sum::<f64>() / (xs.len() as f64 - 1.0);
        let rho = cov01 / (st.sd[0] * st.sd[1]);
        assert!((rho - 0.6).abs() < 0.02, "rho {rho}");
    }

    #[test]
    fn sample_into_matches_sample_bit_for_bit() {
        let corr = CorrelationMatrix::uniform(3, 0.4).unwrap();
        let mvn = MultivariateNormal::from_correlation(&[1.0, 2.0, 3.0], &[0.5, 1.0, 2.0], &corr)
            .unwrap();
        let mut r1 = StdRng::seed_from_u64(17);
        let mut r2 = StdRng::seed_from_u64(17);
        let (mut z, mut out) = (Vec::new(), Vec::new());
        for _ in 0..50 {
            let want = mvn.sample(&mut r1);
            mvn.sample_into(&mut r2, &mut z, &mut out);
            assert_eq!(want, out);
        }
    }

    #[test]
    fn v2_sampler_matches_moments() {
        let corr = CorrelationMatrix::uniform(2, 0.7).unwrap();
        let mvn = MultivariateNormal::from_correlation(&[5.0, -5.0], &[2.0, 3.0], &corr).unwrap();
        let mut rng = StdRng::seed_from_u64(0x52);
        let (mut z, mut out) = (Vec::new(), Vec::new());
        let mut xs = Vec::new();
        for _ in 0..60_000 {
            mvn.sample_into_v2(&mut rng, &mut z, &mut out);
            xs.push(out.clone());
        }
        let st = sample_stats(&xs);
        assert!((st.mean[0] - 5.0).abs() < 0.03, "mean {:?}", st.mean);
        assert!((st.mean[1] - -5.0).abs() < 0.05, "mean {:?}", st.mean);
        assert!((st.sd[0] - 2.0).abs() < 0.03, "sd {:?}", st.sd);
        assert!((st.sd[1] - 3.0).abs() < 0.05, "sd {:?}", st.sd);
        let cov: f64 = xs
            .iter()
            .map(|s| (s[0] - st.mean[0]) * (s[1] - st.mean[1]))
            .sum::<f64>()
            / (xs.len() as f64 - 1.0);
        let rho = cov / (st.sd[0] * st.sd[1]);
        assert!((rho - 0.7).abs() < 0.02, "rho {rho}");
    }

    #[test]
    fn plan_sampler_with_identity_mods_matches_plain_bit_for_bit() {
        let corr = CorrelationMatrix::uniform(3, 0.5).unwrap();
        let mvn = MultivariateNormal::from_correlation(&[1.0, 2.0, 3.0], &[0.5, 1.0, 2.0], &corr)
            .unwrap();
        let (mut z, mut a, mut b) = (Vec::new(), Vec::new(), Vec::new());
        for seed in 0..20u64 {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            mvn.sample_into(&mut r1, &mut z, &mut a);
            let w = mvn.sample_into_plan(&mut r2, 1.0, &[], 0.0, &mut z, &mut b);
            assert_eq!(w, 1.0);
            assert_eq!(a, b);
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            mvn.sample_into_v2(&mut r1, &mut z, &mut a);
            let w = mvn.sample_into_v2_plan(&mut r2, 1.0, &[], 0.0, &mut z, &mut b);
            assert_eq!(w, 1.0);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn plan_sampler_reflects_and_shifts() {
        let corr = CorrelationMatrix::uniform(2, 0.3).unwrap();
        let mvn = MultivariateNormal::from_correlation(&[10.0, 20.0], &[1.0, 2.0], &corr).unwrap();
        let (mut z, mut a, mut b) = (Vec::new(), Vec::new(), Vec::new());
        // Antithetic reflection symmetry: the reflected draw mirrors the
        // original around the mean, exactly.
        let mut r1 = StdRng::seed_from_u64(77);
        let mut r2 = StdRng::seed_from_u64(77);
        mvn.sample_into_plan(&mut r1, 1.0, &[], 0.0, &mut z, &mut a);
        mvn.sample_into_plan(&mut r2, -1.0, &[], 0.0, &mut z, &mut b);
        for ((x, y), m) in a.iter().zip(&b).zip([10.0, 20.0]) {
            assert!(((x - m) + (y - m)).abs() < 1e-12, "{x} and {y} around {m}");
        }
        // Lead override pins the first normal.
        let mut r = StdRng::seed_from_u64(5);
        mvn.sample_into_plan(&mut r, 1.0, &[1.5, -0.5], 0.0, &mut z, &mut a);
        let mut r = StdRng::seed_from_u64(5);
        let w = mvn.sample_into_plan(&mut r, 1.0, &[1.5, -0.5], 2.0, &mut z, &mut b);
        // Shift moves z0 by 2 sigmas through the Cholesky first column
        // and carries the likelihood ratio of the pre-shift normal.
        assert!((w - crate::strata::mean_shift_weight(2.0, 1.5)).abs() < 1e-12);
        assert!(b[0] > a[0]);
    }

    #[test]
    fn perfectly_correlated_samples_move_together() {
        let corr = CorrelationMatrix::uniform(2, 1.0).unwrap();
        let mvn = MultivariateNormal::from_correlation(&[0.0, 0.0], &[1.0, 1.0], &corr).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let s = mvn.sample(&mut rng);
            assert!((s[0] - s[1]).abs() < 1e-9, "{s:?}");
        }
    }

    #[test]
    fn sample_max_is_at_least_each_component_marginal() {
        let corr = CorrelationMatrix::identity(4);
        let mvn =
            MultivariateNormal::from_correlation(&[100.0, 100.0, 100.0, 100.0], &[1.0; 4], &corr)
                .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let maxes = mvn.sample_max_n(&mut rng, 20_000);
        let mean = maxes.iter().sum::<f64>() / maxes.len() as f64;
        // E[max of 4 iid std normals] ~ 1.0294; shifted by 100.
        assert!((mean - 101.029).abs() < 0.05, "mean of max {mean}");
    }
}
