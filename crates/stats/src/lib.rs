//! Statistics substrate for variation-aware timing analysis.
//!
//! This crate provides the probabilistic machinery used throughout the
//! `vardelay` workspace:
//!
//! * [`normal`] — scalar Gaussian math: `erf`/`erfc`, the standard normal
//!   PDF/CDF ([`phi`], [`cap_phi`]) and quantile ([`inv_cap_phi`]), and the
//!   [`Normal`] distribution type.
//! * [`clark`] — Clark's moment-matching approximation for the maximum of
//!   correlated Gaussian random variables (Clark, *Operations Research* 1961),
//!   the core operator behind the paper's pipeline-delay model (eqs. 4–6).
//! * [`matrix`] — small dense symmetric matrices and Cholesky factorization.
//! * [`correlation`] — validated correlation matrices and builders.
//! * [`mvn`] — sampling from multivariate normal distributions.
//! * [`descriptive`] — streaming moments (Welford), quantiles, histograms.
//! * [`mix`] — SplitMix64 bit-mixing for counter-based Monte-Carlo
//!   seeding (shared by the sweep engine and the MC runners).
//! * [`batch`] — batch-shaped normal samplers (pair-producing
//!   Box–Muller, pinned-coefficient inverse-CDF) and frozen polynomial
//!   `ln`/`exp` kernels for the versioned v2 Monte-Carlo trial kernel.
//! * [`ks`] — Kolmogorov–Smirnov distance between samples and a reference
//!   distribution, used to validate analytical models against Monte-Carlo.
//! * [`sobol`] — hand-rolled Sobol low-discrepancy sequences with
//!   counter-based digital-shift scrambling for the QMC trial plan.
//! * [`strata`] — stratified-sampling permutations and the reweighted
//!   (importance-sampling) estimator math for the trial-plan contracts.
//!
//! # Example
//!
//! Estimate the distribution of the max of two correlated stage delays and
//! compare with brute-force sampling:
//!
//! ```
//! use vardelay_stats::{Normal, clark};
//!
//! let a = Normal::new(100.0, 5.0).unwrap();
//! let b = Normal::new(98.0, 7.0).unwrap();
//! let m = clark::max_pair(a, b, 0.3);
//! assert!(m.mean() > 100.0 && m.mean() < 110.0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod clark;
pub mod correlation;
pub mod descriptive;
pub mod ks;
pub mod matrix;
pub mod mix;
pub mod mvn;
pub mod normal;
pub mod sobol;
pub mod strata;

pub use batch::{
    exp_approx, fill_standard_normals_bm, fill_standard_normals_inv_cdf, ln_one_minus,
    sample_standard_normal_inv_cdf, standard_normal_inv_cdf, uniform_open_from_u64,
};
pub use clark::{max_of, max_of_with_order, max_pair, MaxPairMoments};
pub use correlation::CorrelationMatrix;
pub use descriptive::{Histogram, Quantiles, RunningStats};
pub use matrix::SymMatrix;
pub use mix::{counter_seed, splitmix64_mix};
pub use mvn::MultivariateNormal;
pub use normal::{cap_phi, erf, erfc, inv_cap_phi, phi, Normal, NormalError};
pub use sobol::{sobol_shift, SobolSequence, SOBOL_MAX_DIMS};
pub use strata::{
    effective_sample_size, mean_shift_weight, permute256, stratified_uniform, stratum_key,
    weighted_fraction_ci,
};
