//! Batch-shaped samplers and frozen polynomial kernels for the v2 trial
//! kernel.
//!
//! The v1 Monte-Carlo trial loop draws normals one at a time through
//! [`crate::normal::sample_standard_normal`] (a scalar Box–Muller that
//! throws away the sine half of every transform) and evaluates the
//! alpha-power slowdown with `powf`. Everything in this module exists to
//! replace those two costs **under a new, explicitly versioned
//! determinism contract**: each function here is a pure function of its
//! input bits with every coefficient frozen in source, so v2 results are
//! exactly as reproducible as v1 — they are simply *different* pure
//! functions.
//!
//! Three families live here:
//!
//! * **Pair-producing Box–Muller** ([`normal_pair_bm`],
//!   [`fill_standard_normals_bm`]) — one `(ln, sqrt, sin_cos)` group per
//!   *two* normals instead of per one.
//! * **Pinned-coefficient inverse-CDF** ([`standard_normal_inv_cdf`],
//!   [`fill_standard_normals_inv_cdf`]) — Acklam's rational
//!   approximation *without* the Halley refinement that
//!   [`crate::inv_cap_phi`] applies: one uniform (one `u64`) per normal
//!   and, in the central branch covering ~95.15% of draws, no
//!   transcendental calls at all. Absolute error ≤ 1.2e-9 everywhere.
//! * **Frozen `powf` replacement** ([`ln_one_minus`], [`exp_approx`]) —
//!   the two polynomial halves of
//!   `(1-r)^(-alpha) = exp(-alpha · ln(1-r))`, the alpha-power slowdown
//!   factor's reachable form. Coefficients are literal rationals in
//!   source; combined relative error is below 5e-8 over the delay
//!   model's documented domain `|r| <= 0.6`.
//!
//! None of these functions is used by any v1 code path: v1's bytes are
//! pinned by the scalar implementations and must never change.

use rand::Rng;

/// `2^-52`, the uniform-grid step of the open-interval conversion.
const TWO_NEG_52: f64 = 1.0 / 4_503_599_627_370_496.0;

/// Maps a raw `u64` to an **open-interval** uniform in `(0, 1)`:
/// `(top52 + 0.5) · 2^-52`.
///
/// The vendored RNG's own conversion (`(u >> 11) · 2^-53`) lands on the
/// half-open `[0, 1)` and can produce exactly `0`, which the quantile
/// function must reject. Centering each 52-bit grid cell keeps the
/// spacing uniform while making both endpoints unreachable — with 52
/// bits (not 53) the half-step offset stays exactly representable at
/// both ends, so no rounding can re-create an endpoint. This exact
/// mapping is part of the v2 contract.
#[inline]
pub fn uniform_open_from_u64(u: u64) -> f64 {
    ((u >> 12) as f64 + 0.5) * TWO_NEG_52
}

/// One pair-producing Box–Muller transform: maps two open-interval
/// uniforms to two independent standard normals, keeping **both** the
/// cosine and sine halves (v1's scalar sampler discards the sine half,
/// doubling its uniform consumption).
///
/// # Panics
///
/// Debug-asserts that `u1` is in `(0, 1)` (the `ln` argument).
#[inline]
pub fn normal_pair_bm(u1: f64, u2: f64) -> (f64, f64) {
    debug_assert!(u1 > 0.0 && u1 < 1.0, "u1 must be in (0,1), got {u1}");
    let r = (-2.0 * u1.ln()).sqrt();
    let (s, c) = (2.0 * std::f64::consts::PI * u2).sin_cos();
    (r * c, r * s)
}

/// Fills `out` with standard normals using the pair-producing
/// Box–Muller transform, two per `(u64, u64)` uniform pair drawn from
/// `rng` in order.
///
/// An odd final element consumes a full pair and keeps only the cosine
/// half, so RNG consumption is `2 * ceil(out.len() / 2)` draws — a fixed
/// function of the length, which is what makes the fill reproducible
/// inside a counter-seeded trial.
pub fn fill_standard_normals_bm<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    let mut chunks = out.chunks_exact_mut(2);
    for pair in &mut chunks {
        let u1 = uniform_open_from_u64(rng.next_u64());
        let u2 = uniform_open_from_u64(rng.next_u64());
        let (a, b) = normal_pair_bm(u1, u2);
        pair[0] = a;
        pair[1] = b;
    }
    if let [last] = chunks.into_remainder() {
        let u1 = uniform_open_from_u64(rng.next_u64());
        let u2 = uniform_open_from_u64(rng.next_u64());
        *last = normal_pair_bm(u1, u2).0;
    }
}

// Acklam's rational approximation of the standard normal quantile —
// the same frozen coefficient set `crate::inv_cap_phi` starts from,
// duplicated here deliberately: the v2 kernel pins these numerals as
// *its own* contract, independent of any future refinement of the
// scalar quantile.
const ACKLAM_A: [f64; 6] = [
    -3.969683028665376e+01,
    2.209460984245205e+02,
    -2.759285104469687e+02,
    1.383_577_518_672_69e2,
    -3.066479806614716e+01,
    2.506628277459239e+00,
];
const ACKLAM_B: [f64; 5] = [
    -5.447609879822406e+01,
    1.615858368580409e+02,
    -1.556989798598866e+02,
    6.680131188771972e+01,
    -1.328068155288572e+01,
];
const ACKLAM_C: [f64; 6] = [
    -7.784894002430293e-03,
    -3.223964580411365e-01,
    -2.400758277161838e+00,
    -2.549732539343734e+00,
    4.374664141464968e+00,
    2.938163982698783e+00,
];
const ACKLAM_D: [f64; 4] = [
    7.784695709041462e-03,
    3.224671290700398e-01,
    2.445134137142996e+00,
    3.754408661907416e+00,
];
/// Branch point between Acklam's central rational and its tail form.
const ACKLAM_P_LOW: f64 = 0.02425;

/// Acklam's central rational in `q = p - 0.5` (valid for
/// `|q| <= 0.5 - ACKLAM_P_LOW`): a degree-5/degree-5 rational in `q²`,
/// no transcendental calls. Shared verbatim by the scalar quantile and
/// the vectorizable fill so the two are bit-identical per element.
#[inline]
fn acklam_central(q: f64) -> f64 {
    let (a, b) = (ACKLAM_A, ACKLAM_B);
    let r = q * q;
    (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q
        / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
}

/// Acklam's tail rational in `q = sqrt(-2·ln(p_tail))`; the caller
/// negates for the upper tail.
#[inline]
fn acklam_tail(q: f64) -> f64 {
    let (c, d) = (ACKLAM_C, ACKLAM_D);
    (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5])
        / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
}

/// The central-rational map over one lane of uniforms. Marked
/// `inline(always)` so the AVX-multiversioned wrapper below inherits the
/// body and auto-vectorizes it 4-wide; plain mul/add/div vectorization
/// is IEEE-exact per element (FMA is *not* enabled), so every dispatch
/// target produces identical bits.
#[inline(always)]
fn acklam_central_pass(out: &mut [f64], u: &[f64]) {
    for (z, &p) in out.iter_mut().zip(u) {
        *z = acklam_central(p - 0.5);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn acklam_central_pass_avx(out: &mut [f64], u: &[f64]) {
    acklam_central_pass(out, u);
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn acklam_central_pass_dispatch(out: &mut [f64], u: &[f64]) {
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: the AVX feature was just detected at runtime.
        unsafe { acklam_central_pass_avx(out, u) }
    } else {
        acklam_central_pass(out, u);
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn acklam_central_pass_dispatch(out: &mut [f64], u: &[f64]) {
    acklam_central_pass(out, u);
}

/// Standard normal quantile by Acklam's rational approximation
/// **without** the Halley refinement step that [`crate::inv_cap_phi`]
/// adds.
///
/// In the central branch (`0.02425 <= p <= 0.97575`, ~95.15% of uniform
/// draws) this is a pure degree-5/degree-5 rational in `(p - 0.5)^2` —
/// no transcendental calls. The tails use one `ln` + `sqrt` each.
/// Relative error against the exact quantile is below `1.2e-9` over the
/// full open interval (absolute error below ~4e-9), which is orders of
/// magnitude below the Monte-Carlo noise floor at any feasible trial
/// count.
///
/// # Panics
///
/// Debug-asserts `p` in the open interval `(0, 1)`; feed it
/// [`uniform_open_from_u64`] outputs, which cannot touch the endpoints.
#[inline]
pub fn standard_normal_inv_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1), got {p}");
    if p < ACKLAM_P_LOW {
        acklam_tail((-2.0 * p.ln()).sqrt())
    } else if p <= 1.0 - ACKLAM_P_LOW {
        acklam_central(p - 0.5)
    } else {
        -acklam_tail((-2.0 * (1.0 - p).ln()).sqrt())
    }
}

/// Draws one standard normal from `rng` via the inverse CDF — one `u64`
/// per normal, half of v1's Box–Muller consumption.
#[inline]
pub fn sample_standard_normal_inv_cdf<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    standard_normal_inv_cdf(uniform_open_from_u64(rng.next_u64()))
}

/// Fills `out` with standard normals via the inverse CDF, one `u64` per
/// element in order — element-wise identical to calling
/// [`standard_normal_inv_cdf`] on each uniform, but structured for
/// throughput: uniforms for a whole lane are drawn into scratch first,
/// then a branch-free pass evaluates the central rational for every
/// element (vectorizable — ~95.15% of draws need nothing else), and a
/// scalar fix-up pass re-evaluates only the tail elements, and runs only
/// when a lane contains one.
pub fn fill_standard_normals_inv_cdf<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    let mut uniforms = [0.0f64; 64];
    for chunk in out.chunks_mut(64) {
        let u = &mut uniforms[..chunk.len()];
        for v in u.iter_mut() {
            *v = uniform_open_from_u64(rng.next_u64());
        }
        // For tail elements this evaluates the central rational out of
        // its domain — finite junk, overwritten below. Keeping the map
        // reduction-free lets it vectorize.
        acklam_central_pass_dispatch(chunk, u);
        let mut any_tail = false;
        for &p in u.iter() {
            any_tail |= !(ACKLAM_P_LOW..=1.0 - ACKLAM_P_LOW).contains(&p);
        }
        if any_tail {
            for (z, &p) in chunk.iter_mut().zip(u.iter()) {
                if p < ACKLAM_P_LOW {
                    *z = acklam_tail((-2.0 * p.ln()).sqrt());
                } else if p > 1.0 - ACKLAM_P_LOW {
                    *z = -acklam_tail((-2.0 * (1.0 - p).ln()).sqrt());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// FMA-fused v3 variants.
//
// The v2 polynomial kernels above deliberately avoid fused
// multiply-add: their contract predates the v3 kernel, and plain
// mul/add vectorization is IEEE-exact per element on every target. The
// price is that every Horner step costs two serially dependent
// operations (multiply, then add), which makes the chains latency-bound
// — measured on the trial hot path, the polynomial passes run at ~13
// cycles per element despite vectorizing cleanly.
//
// The v3 wide kernel defines its own contract on **fused** steps:
// `f64::mul_add` is correctly rounded (a single rounding per step) and
// LLVM lowers it to hardware FMA where available and to the
// correctly-rounded `fma` runtime everywhere else, so the bits are
// identical on every dispatch target — the same bit-stability guarantee
// as the v2 kernels, at half the operation count and half the chain
// latency. The coefficients are the very same frozen numerals; only the
// rounding schedule (one rounding per step instead of two) differs, so
// each `_fma` variant agrees with its v2 twin to within a few ULP while
// never being bit-interchangeable with it.

/// [`standard_normal_inv_cdf`] with the central rational's Horner chains
/// fused (`mul_add`) — the v3 kernel's quantile. Same frozen Acklam
/// coefficients and branch structure; the tail branches (~4.85% of
/// uniform draws) share [`acklam_tail`] with the v2 quantile verbatim.
///
/// # Panics
///
/// Debug-asserts `p` in the open interval `(0, 1)`.
#[inline]
pub fn standard_normal_inv_cdf_fma(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1), got {p}");
    if p < ACKLAM_P_LOW {
        acklam_tail((-2.0 * p.ln()).sqrt())
    } else if p <= 1.0 - ACKLAM_P_LOW {
        acklam_central_fma(p - 0.5)
    } else {
        -acklam_tail((-2.0 * (1.0 - p).ln()).sqrt())
    }
}

/// [`acklam_central`] with both Horner chains fused and regrouped
/// Estrin-style: the numerator and denominator each become three
/// independent degree-1 leaves combined through `r2`/`r4`, cutting the
/// serial chain ahead of the closing division roughly in half.
#[inline]
fn acklam_central_fma(q: f64) -> f64 {
    let (a, b) = (ACKLAM_A, ACKLAM_B);
    let r = q * q;
    let r2 = r * r;
    let r4 = r2 * r2;
    let n01 = a[4].mul_add(r, a[5]);
    let n23 = a[2].mul_add(r, a[3]);
    let n45 = a[0].mul_add(r, a[1]);
    let num = n45.mul_add(r4, n23.mul_add(r2, n01)) * q;
    let d01 = b[4].mul_add(r, 1.0);
    let d23 = b[2].mul_add(r, b[3]);
    let d45 = b[0].mul_add(r, b[1]);
    let den = d45.mul_add(r4, d23.mul_add(r2, d01));
    num / den
}

/// The fused central-rational map over one lane of uniforms; the
/// `avx,fma` wrapper below inherits the body, where `mul_add` lowers to
/// 4-wide `vfmadd` — and to the correctly-rounded `fma` runtime call in
/// the portable build, producing identical bits.
#[inline(always)]
fn acklam_central_pass_fma(out: &mut [f64], u: &[f64]) {
    // Two independent rational chains per iteration (lock-step halves):
    // the num/den/divide chain is latency-bound, and pairing elements
    // doubles what the out-of-order core can overlap. Identical
    // per-element operations, so bits match the straight-line walk.
    let n = out.len();
    let half = n / 2;
    let (z_lo, z_hi) = out.split_at_mut(half);
    let (u_lo, u_hi) = u.split_at(half);
    for ((zl, &pl), (zh, &ph)) in z_lo.iter_mut().zip(u_lo).zip(z_hi.iter_mut().zip(u_hi)) {
        *zl = acklam_central_fma(pl - 0.5);
        *zh = acklam_central_fma(ph - 0.5);
    }
    if n % 2 == 1 {
        z_hi[half] = acklam_central_fma(u_hi[half] - 0.5);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx,fma")]
unsafe fn acklam_central_pass_fma_avx(out: &mut [f64], u: &[f64]) {
    acklam_central_pass_fma(out, u);
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn acklam_central_pass_fma_dispatch(out: &mut [f64], u: &[f64]) {
    if std::arch::is_x86_feature_detected!("fma") && std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: both features were just detected at runtime.
        unsafe { acklam_central_pass_fma_avx(out, u) }
    } else {
        acklam_central_pass_fma(out, u);
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn acklam_central_pass_fma_dispatch(out: &mut [f64], u: &[f64]) {
    acklam_central_pass_fma(out, u);
}

/// Draw one chunk of open-interval uniforms, recording which indices
/// fall in the quantile's tail regions. The branchless index push rides
/// in the shadow of the generator's serial dependency chain, so tail
/// detection is free here where a separate scan pass over the chunk is
/// not.
#[inline]
fn draw_uniform_chunk<R: Rng + ?Sized>(rng: &mut R, u: &mut [f64], tails: &mut [u8; 64]) -> usize {
    let mut tn = 0usize;
    for (i, v) in u.iter_mut().enumerate() {
        let p = uniform_open_from_u64(rng.next_u64());
        *v = p;
        tails[tn] = i as u8;
        tn += usize::from(!(ACKLAM_P_LOW..=1.0 - ACKLAM_P_LOW).contains(&p));
    }
    tn
}

/// One quantile chunk of the fused fill: the vectorized central
/// rational over every element, then the tail fixup on the recorded
/// indices only. Shared by the single- and multi-stream fills so both
/// produce identical bits for identical uniforms.
#[inline]
fn quantile_chunk_fma(chunk: &mut [f64], u: &[f64], tails: &[u8]) {
    // For tail elements this evaluates the central rational out of
    // its domain — finite junk, overwritten below.
    acklam_central_pass_fma_dispatch(chunk, u);
    for &i in tails {
        let i = i as usize;
        let p = u[i];
        chunk[i] = if p < ACKLAM_P_LOW {
            acklam_tail((-2.0 * p.ln()).sqrt())
        } else {
            -acklam_tail((-2.0 * (1.0 - p).ln()).sqrt())
        };
    }
}

/// [`fill_standard_normals_inv_cdf`] on the fused quantile — the v3
/// kernel's gate-normal fill. One `u64` per element in order (identical
/// RNG consumption to the v2 fill, so swapping fills cannot shift any
/// later draw), element-wise identical to
/// [`standard_normal_inv_cdf_fma`] on each uniform.
pub fn fill_standard_normals_inv_cdf_fma<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    let mut uniforms = [0.0f64; 64];
    let mut tails = [0u8; 64];
    for chunk in out.chunks_mut(64) {
        let u = &mut uniforms[..chunk.len()];
        let tn = draw_uniform_chunk(rng, u, &mut tails);
        quantile_chunk_fma(chunk, u, &tails[..tn]);
    }
}

/// [`fill_standard_normals_inv_cdf_fma`] over several **independent**
/// generator streams at once: row `i` of `out` (rows are `out.len() /
/// rngs.len()` contiguous elements) is filled element-wise and
/// bit-identically as `fill_standard_normals_inv_cdf_fma(&mut rngs[i],
/// row_i)` would fill it, consuming only `rngs[i]`. The point is
/// throughput: a single xoshiro stream is a serial dependency chain
/// (~4–5 cycles per `u64`, un-hideable), but four interleaved
/// independent streams keep the scalar units saturated, roughly
/// tripling generation throughput. Rows are processed in quads;
/// leftover rows (fewer than four) fall back to the single-stream
/// fill, which produces the same bits.
///
/// # Panics
///
/// Panics if `rngs` is empty or `out.len()` is not a multiple of
/// `rngs.len()`.
pub fn fill_standard_normals_inv_cdf_fma_multi<R: Rng>(rngs: &mut [R], out: &mut [f64]) {
    assert!(!rngs.is_empty(), "need at least one stream");
    assert!(
        out.len().is_multiple_of(rngs.len()),
        "output length {} is not a multiple of the stream count {}",
        out.len(),
        rngs.len()
    );
    let row_len = out.len() / rngs.len();
    if row_len == 0 {
        // Zero-length rows consume nothing from any stream — exactly
        // like the single-stream fill on an empty slice.
        return;
    }
    for (rq, oq) in rngs.chunks_mut(4).zip(out.chunks_mut(row_len * 4)) {
        if let [a, b, c, d] = rq {
            let mut u = [[0.0f64; 64]; 4];
            let mut tails = [[0u8; 64]; 4];
            let mut start = 0usize;
            while start < row_len {
                let len = 64.min(row_len - start);
                let mut tn = [0usize; 4];
                let (u01, u23) = u.split_at_mut(2);
                let (u0, u1) = u01.split_at_mut(1);
                let (u2, u3) = u23.split_at_mut(1);
                let rows = u0[0][..len]
                    .iter_mut()
                    .zip(&mut u1[0][..len])
                    .zip(u2[0][..len].iter_mut().zip(&mut u3[0][..len]));
                for (i, ((v0, v1), (v2, v3))) in rows.enumerate() {
                    let p0 = uniform_open_from_u64(a.next_u64());
                    let p1 = uniform_open_from_u64(b.next_u64());
                    let p2 = uniform_open_from_u64(c.next_u64());
                    let p3 = uniform_open_from_u64(d.next_u64());
                    *v0 = p0;
                    *v1 = p1;
                    *v2 = p2;
                    *v3 = p3;
                    let range = ACKLAM_P_LOW..=1.0 - ACKLAM_P_LOW;
                    tails[0][tn[0]] = i as u8;
                    tn[0] += usize::from(!range.contains(&p0));
                    tails[1][tn[1]] = i as u8;
                    tn[1] += usize::from(!range.contains(&p1));
                    tails[2][tn[2]] = i as u8;
                    tn[2] += usize::from(!range.contains(&p2));
                    tails[3][tn[3]] = i as u8;
                    tn[3] += usize::from(!range.contains(&p3));
                }
                for (lane, ul) in u.iter().enumerate() {
                    let off = lane * row_len + start;
                    quantile_chunk_fma(
                        &mut oq[off..off + len],
                        &ul[..len],
                        &tails[lane][..tn[lane]],
                    );
                }
                start += len;
            }
        } else {
            for (rng, row) in rq.iter_mut().zip(oq.chunks_mut(row_len)) {
                fill_standard_normals_inv_cdf_fma(rng, row);
            }
        }
    }
}

/// Largest `|r|` the polynomial `ln(1-r)`/`exp` pair is certified for.
///
/// The delay model's reachable domain is far inside this: the paper's
/// variation mixes put 6σ of total ΔVth near 0.27 V against a 0.7 V
/// overdrive (`r ≈ 0.39`), and callers fall back to exact `powf` beyond
/// the certified range rather than extrapolate.
pub const LN_ONE_MINUS_MAX_R: f64 = 0.6;

/// `ln(1 - r)` by the atanh series, for `|r| <=` [`LN_ONE_MINUS_MAX_R`].
///
/// With `u = r / (2 - r)` one has `1 - r = (1 - u)/(1 + u)`, hence
/// `ln(1-r) = -2·atanh(u) = -2·(u + u³/3 + u⁵/5 + …)`; the series is
/// truncated after the `u¹⁷/17` term. At the domain edge (`u ≈ 0.4286`)
/// the truncation error is below `2e-8` absolute, and it falls off as
/// `u¹⁹` inside it. No transcendental calls: one division plus a fixed
/// odd-power chain whose nine reciprocal coefficients are frozen
/// below.
///
/// # Panics
///
/// Debug-asserts the certified domain.
// rustfmt::skip: the deeply nested Horner chain below makes rustfmt's
// expression layout search take effectively unbounded time. The allow
// keeps the frozen coefficients at full printed precision — they are
// the contract, not a derivation to be re-rounded.
#[rustfmt::skip]
#[allow(clippy::excessive_precision)]
#[inline]
pub fn ln_one_minus(r: f64) -> f64 {
    debug_assert!(
        r.abs() <= LN_ONE_MINUS_MAX_R,
        "ln_one_minus certified only for |r| <= {LN_ONE_MINUS_MAX_R}, got {r}"
    );
    let u = r / (2.0 - r);
    let u2 = u * u;
    // 1/3, 1/5, …, 1/17 — frozen reciprocals of the odd integers.
    let s = 1.0
        + u2 * (0.333_333_333_333_333_33
            + u2 * (0.2
                + u2 * (0.142_857_142_857_142_85
                    + u2 * (0.111_111_111_111_111_11
                        + u2 * (0.090_909_090_909_090_91
                            + u2 * (0.076_923_076_923_076_92
                                + u2 * (0.066_666_666_666_666_67
                                    + u2 * 0.058_823_529_411_764_705)))))));
    -2.0 * u * s
}

/// Largest `|x|` [`exp_approx`] is certified for.
pub const EXP_APPROX_MAX_X: f64 = 3.0;

/// `exp(x)` by argument quartering and a degree-12 Taylor polynomial,
/// for `|x| <=` [`EXP_APPROX_MAX_X`].
///
/// `exp(x) = (T₁₂(x/4))⁴` with `T₁₂` the Maclaurin polynomial of the
/// exponential (coefficients `1/k!` frozen below). At the domain edge
/// the quartered argument is `0.75`, where the truncation error of
/// `T₁₂` is ~1e-11; two squarings at most quadruple the relative error,
/// keeping it below `5e-11`. No transcendental calls.
///
/// # Panics
///
/// Debug-asserts the certified domain.
// rustfmt::skip + allow: same hazards as ln_one_minus.
#[rustfmt::skip]
#[allow(clippy::excessive_precision)]
#[inline]
pub fn exp_approx(x: f64) -> f64 {
    debug_assert!(
        x.abs() <= EXP_APPROX_MAX_X,
        "exp_approx certified only for |x| <= {EXP_APPROX_MAX_X}, got {x}"
    );
    let y = 0.25 * x;
    // Horner over 1/k! for k = 0..=12, frozen.
    let t = 1.0
        + y * (1.0
            + y * (0.5
                + y * (0.166_666_666_666_666_66
                    + y * (0.041_666_666_666_666_664
                        + y * (0.008_333_333_333_333_333
                            + y * (0.001_388_888_888_888_889
                                + y * (1.984_126_984_126_984e-4
                                    + y * (2.480_158_730_158_730_2e-5
                                        + y * (2.755_731_922_398_589_4e-6
                                            + y * (2.755_731_922_398_589_4e-7
                                                + y * (2.505_210_838_544_172e-8
                                                    + y * 2.087_675_698_786_81e-9)))))))))));
    let t2 = t * t;
    t2 * t2
}

/// [`ln_one_minus`] with the odd-power chain fused (`mul_add`) and
/// regrouped Estrin-style — the v3 kernel's half of the alpha-power
/// slowdown. Same frozen reciprocal coefficients, same truncation, and
/// same certified domain as [`ln_one_minus`]; fusing removes one
/// rounding per step and the Estrin tree cuts the serial dependency
/// chain roughly in half (the pass is latency-bound, not
/// throughput-bound), so results agree with [`ln_one_minus`] to a few
/// ULP without being bit-interchangeable.
///
/// # Panics
///
/// Debug-asserts the certified domain.
#[inline]
pub fn ln_one_minus_fma(r: f64) -> f64 {
    debug_assert!(
        r.abs() <= LN_ONE_MINUS_MAX_R,
        "ln_one_minus_fma certified only for |r| <= {LN_ONE_MINUS_MAX_R}, got {r}"
    );
    ln_one_minus_fma_raw(r)
}

/// [`ln_one_minus_fma`] without the domain check, for fused-sweep
/// callers that evaluate speculatively and range-test afterwards.
/// Out-of-domain inputs produce finite-or-non-finite junk (never a
/// trap); the caller must discard such results.
#[inline]
pub fn ln_one_minus_fma_raw(r: f64) -> f64 {
    ln_series_fma(r / (2.0 - r))
}

/// `ln(1 - num/den)` through the same fused atanh series as
/// [`ln_one_minus_fma`], but with the series argument formed in a
/// **single** division: for `r = num/den` one has `u = r/(2-r) =
/// num/(2·den - num)`, and `2·den` is an exact power-of-two scaling, so
/// this spends one rounding (and one divide — the hot loops' scarcest
/// resource) where the two-step form spends two of each. No domain
/// check: callers range-test `|num| <= `[`LN_ONE_MINUS_MAX_R`]`·den`
/// themselves and must discard out-of-domain junk.
#[inline]
pub fn ln_one_minus_ratio_fma_raw(num: f64, den: f64) -> f64 {
    ln_series_fma(num / (2.0 * den - num))
}

/// The shared fused atanh series `-2·u·(1 + u²/3 + … + u¹⁶/17)` behind
/// both `_fma` forms of `ln(1-r)`.
#[allow(clippy::excessive_precision)]
#[inline]
fn ln_series_fma(u: f64) -> f64 {
    let u2 = u * u;
    let u4 = u2 * u2;
    let u8 = u4 * u4;
    let u16 = u8 * u8;
    // The same frozen reciprocals 1/3 .. 1/17 as `ln_one_minus`,
    // paired degree-1 (in u2), then degree-2 (in u4), then combined in
    // u8/u16 — four independent leaf chains instead of one serial one.
    let q0 = 0.333_333_333_333_333_33f64.mul_add(u2, 1.0);
    let q1 = 0.142_857_142_857_142_85f64.mul_add(u2, 0.2);
    let q2 = 0.090_909_090_909_090_91f64.mul_add(u2, 0.111_111_111_111_111_11);
    let q3 = 0.066_666_666_666_666_67f64.mul_add(u2, 0.076_923_076_923_076_92);
    let e0 = q1.mul_add(u4, q0);
    let e1 = q3.mul_add(u4, q2);
    let s = 0.058_823_529_411_764_705f64.mul_add(u16, e1.mul_add(u8, e0));
    -2.0 * u * s
}

/// [`exp_approx`] with the Maclaurin chain fused (`mul_add`) and
/// regrouped Estrin-style — the v3 kernel's other half of the
/// alpha-power slowdown. Same frozen `1/k!` coefficients, same
/// truncation, quartering, and certified domain as the v2 twin; the
/// Estrin tree replaces the 13-step serial Horner chain with six
/// independent degree-1 leaves combined in `log` depth, roughly
/// halving the latency of this latency-bound kernel.
///
/// # Panics
///
/// Debug-asserts the certified domain.
#[inline]
pub fn exp_approx_fma(x: f64) -> f64 {
    debug_assert!(
        x.abs() <= EXP_APPROX_MAX_X,
        "exp_approx_fma certified only for |x| <= {EXP_APPROX_MAX_X}, got {x}"
    );
    exp_approx_fma_raw(x)
}

/// [`exp_approx_fma`] without the domain check, for fused-sweep callers
/// that evaluate speculatively and range-test afterwards. Out-of-domain
/// inputs produce junk (never a trap); the caller must discard such
/// results.
#[allow(clippy::excessive_precision)]
#[inline]
pub fn exp_approx_fma_raw(x: f64) -> f64 {
    let y = 0.25 * x;
    let y2 = y * y;
    let y4 = y2 * y2;
    let y8 = y4 * y4;
    // The same frozen factorials 1/0! .. 1/12! as `exp_approx`, paired
    // degree-1 (in y), then degree-3 (in y2), then combined in y4/y8.
    let q0 = y + 1.0;
    let q1 = 0.166_666_666_666_666_66f64.mul_add(y, 0.5);
    let q2 = 0.008_333_333_333_333_333f64.mul_add(y, 0.041_666_666_666_666_664);
    let q3 = 1.984_126_984_126_984e-4f64.mul_add(y, 0.001_388_888_888_888_889);
    let q4 = 2.755_731_922_398_589_4e-6f64.mul_add(y, 2.480_158_730_158_730_2e-5);
    let q5 = 2.505_210_838_544_172e-8f64.mul_add(y, 2.755_731_922_398_589_4e-7);
    let e0 = q1.mul_add(y2, q0);
    let e1 = q3.mul_add(y2, q2);
    let e2 = q5.mul_add(y2, q4);
    let f0 = e1.mul_add(y4, e0);
    let f1 = 2.087_675_698_786_81e-9f64.mul_add(y4, e2);
    let t = f1.mul_add(y8, f0);
    let t2 = t * t;
    t2 * t2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::RunningStats;
    use crate::normal::inv_cap_phi;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn open_uniform_never_touches_endpoints() {
        assert!(uniform_open_from_u64(0) > 0.0);
        assert!(uniform_open_from_u64(u64::MAX) < 1.0);
        // Mid-range value is the expected grid point.
        let u = 1u64 << 63;
        assert!((uniform_open_from_u64(u) - 0.5).abs() < 1e-15);
    }

    /// Satellite requirement: pair-producing Box–Muller moment checks
    /// against N(0,1) — mean, variance, and skewness, including the
    /// sine halves v1 never emits.
    #[test]
    fn pair_bm_moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(0xB0C5);
        let mut buf = [0.0; 64];
        let mut stats = RunningStats::new();
        for _ in 0..4_000 {
            fill_standard_normals_bm(&mut rng, &mut buf);
            for &z in &buf {
                stats.push(z);
            }
        }
        assert!(stats.mean().abs() < 0.005, "mean {}", stats.mean());
        assert!(
            (stats.sample_sd() - 1.0).abs() < 0.005,
            "sd {}",
            stats.sample_sd()
        );
        assert!(stats.skewness().abs() < 0.01, "skew {}", stats.skewness());
        assert!(
            stats.excess_kurtosis().abs() < 0.03,
            "kurt {}",
            stats.excess_kurtosis()
        );
    }

    #[test]
    fn pair_bm_halves_are_independent() {
        // Correlation between the cosine and sine halves of each pair
        // must vanish — they are the two coordinates of an isotropic
        // Gaussian point.
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum_ab = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let u1 = uniform_open_from_u64(rng.next_u64());
            let u2 = uniform_open_from_u64(rng.next_u64());
            let (a, b) = normal_pair_bm(u1, u2);
            sum_ab += a * b;
        }
        let rho = sum_ab / n as f64;
        assert!(rho.abs() < 0.01, "cos/sin halves correlate: {rho}");
    }

    #[test]
    fn odd_fill_consumes_a_fixed_number_of_draws() {
        // Same seed, lengths 5 then 2: the 5-fill must consume exactly
        // 6 draws (3 pairs), so the next draw after it equals draw #7
        // of a fresh stream.
        let mut a = StdRng::seed_from_u64(11);
        let mut buf5 = [0.0; 5];
        fill_standard_normals_bm(&mut a, &mut buf5);
        let next = a.next_u64();
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..6 {
            b.next_u64();
        }
        assert_eq!(next, b.next_u64());
    }

    #[test]
    fn inv_cdf_matches_refined_quantile() {
        // The no-Halley rational must sit within Acklam's published
        // error envelope of the refined quantile over both branches.
        let rel = |p: f64| {
            let got = standard_normal_inv_cdf(p);
            let want = inv_cap_phi(p);
            (got - want).abs() / want.abs().max(1.0)
        };
        let mut worst = 0.0_f64;
        for i in 1..20_000 {
            worst = worst.max(rel(f64::from(i) / 20_000.0));
        }
        // Deep tails, too (the CLT-free part of the domain).
        for &p in &[1e-12, 1e-9, 1e-6, 1.0 - 1e-9, 1.0 - 1e-12] {
            worst = worst.max(rel(p));
        }
        assert!(worst < 2e-9, "max rel error {worst}");
    }

    #[test]
    fn inv_cdf_sampler_moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(0x1CDF);
        let mut buf = [0.0; 64];
        let mut stats = RunningStats::new();
        for _ in 0..4_000 {
            fill_standard_normals_inv_cdf(&mut rng, &mut buf);
            for &z in &buf {
                stats.push(z);
            }
        }
        assert!(stats.mean().abs() < 0.005, "mean {}", stats.mean());
        assert!(
            (stats.sample_sd() - 1.0).abs() < 0.005,
            "sd {}",
            stats.sample_sd()
        );
        assert!(stats.skewness().abs() < 0.01, "skew {}", stats.skewness());
    }

    #[test]
    fn inv_cdf_fill_matches_scalar_elementwise() {
        // The vector-pass + tail-fixup fill must be bit-identical to the
        // scalar quantile per element (97 draws ⇒ several tail elements
        // and a partial final lane).
        let mut a = StdRng::seed_from_u64(0xF1FF);
        let mut buf = [0.0; 97];
        fill_standard_normals_inv_cdf(&mut a, &mut buf);
        let mut b = StdRng::seed_from_u64(0xF1FF);
        for (i, &z) in buf.iter().enumerate() {
            let want = standard_normal_inv_cdf(uniform_open_from_u64(b.next_u64()));
            assert_eq!(z, want, "element {i}");
        }
    }

    #[test]
    fn inv_cdf_uses_one_draw_per_normal() {
        let mut a = StdRng::seed_from_u64(21);
        let _ = sample_standard_normal_inv_cdf(&mut a);
        let next = a.next_u64();
        let mut b = StdRng::seed_from_u64(21);
        b.next_u64();
        assert_eq!(next, b.next_u64());
    }

    #[test]
    fn fma_fill_matches_fma_scalar_quantile_elementwise() {
        // The fused vector-pass fill must be bit-identical to the fused
        // scalar quantile per element, with identical RNG consumption to
        // the v2 fill (97 draws ⇒ tail elements and a partial final
        // lane).
        let mut a = StdRng::seed_from_u64(0xF3A);
        let mut buf = [0.0; 97];
        fill_standard_normals_inv_cdf_fma(&mut a, &mut buf);
        let mut b = StdRng::seed_from_u64(0xF3A);
        for (i, &z) in buf.iter().enumerate() {
            let want = standard_normal_inv_cdf_fma(uniform_open_from_u64(b.next_u64()));
            assert_eq!(z, want, "element {i}");
        }
        assert_eq!(a.next_u64(), b.next_u64(), "RNG consumption diverged");
    }

    #[test]
    fn fma_quantile_agrees_with_v2_quantile_but_not_bitwise() {
        // Same frozen coefficients, different rounding schedule: the two
        // quantiles must agree far below the Monte-Carlo noise floor
        // while remaining distinct functions in the central branch (the
        // tails are shared verbatim).
        let mut any_differ = false;
        for i in 1..=9_999 {
            let p = f64::from(i) / 10_000.0;
            let fused = standard_normal_inv_cdf_fma(p);
            let plain = standard_normal_inv_cdf(p);
            assert!(
                (fused - plain).abs() <= 1e-12 * plain.abs().max(1.0),
                "p={p}: {fused} vs {plain}"
            );
            any_differ |= fused.to_bits() != plain.to_bits();
        }
        assert!(any_differ, "fused central branch never changed a bit");
    }

    #[test]
    fn fma_poly_kernels_agree_with_v2_kernels() {
        let mut r = -LN_ONE_MINUS_MAX_R;
        while r <= LN_ONE_MINUS_MAX_R {
            let fused = ln_one_minus_fma(r);
            let plain = ln_one_minus(r);
            assert!(
                (fused - plain).abs() <= 1e-13 * plain.abs().max(1e-3),
                "r={r}: {fused} vs {plain}"
            );
            r += 1e-3;
        }
        let mut x = -EXP_APPROX_MAX_X;
        while x <= EXP_APPROX_MAX_X {
            let fused = exp_approx_fma(x);
            let plain = exp_approx(x);
            assert!(
                ((fused - plain) / plain).abs() <= 1e-13,
                "x={x}: {fused} vs {plain}"
            );
            x += 1e-3;
        }
        assert_eq!(exp_approx_fma(0.0), 1.0);
        assert_eq!(ln_one_minus_fma(0.0), 0.0);
    }

    #[test]
    fn ln_one_minus_matches_reference() {
        let mut worst = 0.0_f64;
        let mut r = -LN_ONE_MINUS_MAX_R;
        while r <= LN_ONE_MINUS_MAX_R {
            if r.abs() > 1e-12 {
                let got = ln_one_minus(r);
                let want = (1.0 - r).ln();
                worst = worst.max((got - want).abs());
            }
            r += 1e-4;
        }
        assert!(worst < 2e-8, "max abs error {worst}");
        assert_eq!(ln_one_minus(0.0), 0.0);
    }

    #[test]
    fn exp_approx_matches_reference() {
        let mut worst = 0.0_f64;
        let mut x = -EXP_APPROX_MAX_X;
        while x <= EXP_APPROX_MAX_X {
            let got = exp_approx(x);
            let want = x.exp();
            worst = worst.max(((got - want) / want).abs());
            x += 1e-3;
        }
        assert!(worst < 5e-11, "max rel error {worst}");
        assert_eq!(exp_approx(0.0), 1.0);
    }
}
