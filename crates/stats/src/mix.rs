//! Integer bit-mixing for counter-based seeding.
//!
//! Monte-Carlo code across the workspace derives per-trial RNG seeds as
//! a pure function of `(campaign identity, trial index)` — the property
//! that makes trial streams independent of scheduling. Both the sweep
//! engine and the standalone Monte-Carlo runners build those seeds on
//! the same audited finalizer below instead of carrying private forks.

/// The SplitMix64 finalizer (Steele, Lea & Flood 2014): a full-avalanche
/// 64-bit mix. Every output bit depends on every input bit, so nearby
/// counters map to statistically unrelated seeds.
#[inline]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A counter-based seed for trial `trial` of a campaign identified by
/// `id`: two mix rounds over the golden-ratio-spread pair. Used (with
/// the campaign's own notion of identity) by the sweep engine and the
/// Monte-Carlo runners.
#[inline]
pub fn counter_seed(id: u64, trial: u64) -> u64 {
    splitmix64_mix(splitmix64_mix(
        id ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(trial.wrapping_add(1)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_bijective_looking_and_stable() {
        // Reference values pinned so seeding can never silently change:
        // every Monte-Carlo number in the workspace depends on these.
        assert_eq!(splitmix64_mix(0), 0);
        assert_eq!(splitmix64_mix(1), 0x5692_161d_100b_05e5);
        assert_ne!(splitmix64_mix(2), splitmix64_mix(3));
    }

    #[test]
    fn counter_seeds_avalanche() {
        let mut total = 0u32;
        for t in 0..1000 {
            total += (counter_seed(42, t) ^ counter_seed(42, t + 1)).count_ones();
        }
        let avg = f64::from(total) / 1000.0;
        assert!((24.0..40.0).contains(&avg), "avg flipped bits {avg}");
        assert_ne!(counter_seed(1, 5), counter_seed(2, 5));
    }
}
