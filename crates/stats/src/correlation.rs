//! Validated correlation matrices and domain-specific builders.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::matrix::{MatrixError, SymMatrix};

/// Error constructing a [`CorrelationMatrix`].
#[derive(Debug, Clone, PartialEq)]
pub enum CorrelationError {
    /// An off-diagonal entry was outside `[-1, 1]`.
    EntryOutOfRange {
        /// Row index.
        i: usize,
        /// Column index.
        j: usize,
        /// Offending value.
        value: f64,
    },
    /// A diagonal entry differed from 1.
    DiagonalNotOne {
        /// Index on the diagonal.
        i: usize,
        /// Offending value.
        value: f64,
    },
    /// Underlying matrix problem (dimension mismatch etc.).
    Matrix(MatrixError),
}

impl fmt::Display for CorrelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorrelationError::EntryOutOfRange { i, j, value } => {
                write!(f, "correlation ({i},{j}) = {value} outside [-1, 1]")
            }
            CorrelationError::DiagonalNotOne { i, value } => {
                write!(f, "diagonal entry ({i},{i}) = {value}, must be 1")
            }
            CorrelationError::Matrix(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CorrelationError {}

impl From<MatrixError> for CorrelationError {
    fn from(e: MatrixError) -> Self {
        CorrelationError::Matrix(e)
    }
}

/// A validated correlation matrix: symmetric, unit diagonal, entries in
/// `[-1, 1]`.
///
/// Positive semi-definiteness is *not* checked at construction (it would
/// require a factorization); samplers that need it perform a Cholesky with
/// jitter and will surface a [`MatrixError::NotPositiveDefinite`] if the
/// matrix is genuinely indefinite.
///
/// ```
/// use vardelay_stats::CorrelationMatrix;
/// let c = CorrelationMatrix::uniform(4, 0.5)?;
/// assert_eq!(c.get(0, 0), 1.0);
/// assert_eq!(c.get(1, 3), 0.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationMatrix {
    inner: SymMatrix,
}

impl CorrelationMatrix {
    /// The identity matrix — fully independent variables.
    pub fn identity(n: usize) -> Self {
        CorrelationMatrix {
            inner: SymMatrix::identity(n),
        }
    }

    /// Equi-correlated matrix: every off-diagonal entry equals `rho`.
    ///
    /// This is the paper's model for inter-die-dominated variation
    /// (`rho -> 1`) through fully random intra-die variation (`rho = 0`).
    ///
    /// # Errors
    ///
    /// Returns an error if `rho` is outside `[-1, 1]`. (Note: for `n > 2`,
    /// `rho` must also be `>= -1/(n-1)` to be PSD; that is reported lazily
    /// by the sampler's factorization.)
    pub fn uniform(n: usize, rho: f64) -> Result<Self, CorrelationError> {
        if !(-1.0..=1.0).contains(&rho) || rho.is_nan() {
            return Err(CorrelationError::EntryOutOfRange {
                i: 0,
                j: 1,
                value: rho,
            });
        }
        Ok(CorrelationMatrix {
            inner: SymMatrix::from_fn(n, |i, j| if i == j { 1.0 } else { rho }),
        })
    }

    /// Distance-decay correlation for variables at 1-D positions
    /// `positions`, with `rho(i, j) = exp(-|p_i - p_j| / length)`.
    ///
    /// Models spatially correlated systematic intra-die variation for
    /// pipeline stages laid out along the die.
    ///
    /// # Panics
    ///
    /// Panics if `length <= 0`.
    pub fn exponential_decay(positions: &[f64], length: f64) -> Self {
        assert!(length > 0.0, "correlation length must be positive");
        CorrelationMatrix {
            inner: SymMatrix::from_fn(positions.len(), |i, j| {
                if i == j {
                    1.0
                } else {
                    (-(positions[i] - positions[j]).abs() / length).exp()
                }
            }),
        }
    }

    /// Builds from an arbitrary symmetric matrix, validating diagonal and
    /// range.
    ///
    /// # Errors
    ///
    /// Returns [`CorrelationError`] on any invalid entry.
    pub fn from_matrix(m: SymMatrix) -> Result<Self, CorrelationError> {
        for i in 0..m.dim() {
            let d = m.get(i, i);
            if (d - 1.0).abs() > 1e-9 {
                return Err(CorrelationError::DiagonalNotOne { i, value: d });
            }
            for j in (i + 1)..m.dim() {
                let v = m.get(i, j);
                if !(-1.0..=1.0).contains(&v) || v.is_nan() {
                    return Err(CorrelationError::EntryOutOfRange { i, j, value: v });
                }
            }
        }
        Ok(CorrelationMatrix { inner: m })
    }

    /// Builds the correlation matrix implied by a covariance matrix.
    ///
    /// # Errors
    ///
    /// Returns an error if any diagonal entry of `cov` is non-positive.
    pub fn from_covariance(cov: &SymMatrix) -> Result<Self, CorrelationError> {
        let n = cov.dim();
        for i in 0..n {
            if cov.get(i, i) <= 0.0 {
                return Err(CorrelationError::DiagonalNotOne {
                    i,
                    value: cov.get(i, i),
                });
            }
        }
        let m = SymMatrix::from_fn(n, |i, j| {
            if i == j {
                1.0
            } else {
                (cov.get(i, j) / (cov.get(i, i) * cov.get(j, j)).sqrt()).clamp(-1.0, 1.0)
            }
        });
        Ok(CorrelationMatrix { inner: m })
    }

    /// The dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.inner.dim()
    }

    /// Correlation between variables `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.inner.get(i, j)
    }

    /// Borrow the underlying symmetric matrix.
    #[inline]
    pub fn as_matrix(&self) -> &SymMatrix {
        &self.inner
    }

    /// Consumes self, returning the underlying symmetric matrix.
    #[inline]
    pub fn into_matrix(self) -> SymMatrix {
        self.inner
    }

    /// Scales into a covariance matrix given per-variable standard
    /// deviations: `cov_ij = rho_ij * sd_i * sd_j`.
    ///
    /// # Panics
    ///
    /// Panics if `sds.len() != dim()`.
    pub fn to_covariance(&self, sds: &[f64]) -> SymMatrix {
        assert_eq!(sds.len(), self.dim(), "sd vector length mismatch");
        SymMatrix::from_fn(self.dim(), |i, j| self.get(i, j) * sds[i] * sds[j])
    }
}

impl fmt::Display for CorrelationMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_builds_and_validates() {
        let c = CorrelationMatrix::uniform(3, 0.25).unwrap();
        assert_eq!(c.dim(), 3);
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(0, 2), 0.25);
        assert!(CorrelationMatrix::uniform(3, 1.5).is_err());
    }

    #[test]
    fn exponential_decay_monotone_in_distance() {
        let c = CorrelationMatrix::exponential_decay(&[0.0, 1.0, 3.0], 2.0);
        assert!(c.get(0, 1) > c.get(0, 2));
        assert!((c.get(0, 1) - (-0.5_f64).exp()).abs() < 1e-14);
    }

    #[test]
    fn from_matrix_rejects_bad_diag_and_range() {
        let bad_diag = SymMatrix::from_rows(2, &[0.9, 0.0, 0.0, 1.0]).unwrap();
        assert!(matches!(
            CorrelationMatrix::from_matrix(bad_diag),
            Err(CorrelationError::DiagonalNotOne { i: 0, .. })
        ));
        let bad_entry = SymMatrix::from_rows(2, &[1.0, 1.2, 1.2, 1.0]).unwrap();
        assert!(matches!(
            CorrelationMatrix::from_matrix(bad_entry),
            Err(CorrelationError::EntryOutOfRange { .. })
        ));
    }

    #[test]
    fn covariance_roundtrip() {
        let c = CorrelationMatrix::uniform(2, 0.4).unwrap();
        let cov = c.to_covariance(&[2.0, 5.0]);
        assert!((cov.get(0, 1) - 4.0).abs() < 1e-14);
        let back = CorrelationMatrix::from_covariance(&cov).unwrap();
        assert!((back.get(0, 1) - 0.4).abs() < 1e-14);
    }
}
