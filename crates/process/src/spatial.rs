//! Spatial-correlation model for systematic intra-die variation.
//!
//! The die is divided into a grid of regions. Gates in the same region share
//! one systematic ΔVth; values in different regions are correlated with an
//! exponential distance decay `ρ(d) = exp(-d / λ)` where `λ` is the
//! correlation length (both in units of the die edge). This is the standard
//! grid model for spatially-correlated W/L/Tox variation \[1\].

use serde::{Deserialize, Serialize};
use vardelay_stats::matrix::{Cholesky, SymMatrix};

/// A point on the die in normalized coordinates (`0..=1` on both axes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiePosition {
    /// Horizontal coordinate, 0 (left edge) to 1 (right edge).
    pub x: f64,
    /// Vertical coordinate, 0 (bottom) to 1 (top).
    pub y: f64,
}

impl DiePosition {
    /// Creates a position, clamping coordinates into `[0, 1]`.
    pub fn new(x: f64, y: f64) -> Self {
        DiePosition {
            x: x.clamp(0.0, 1.0),
            y: y.clamp(0.0, 1.0),
        }
    }

    /// Euclidean distance to another position (die-edge units).
    pub fn distance(&self, other: &DiePosition) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A `rows x cols` grid of spatially-correlated regions covering the die.
///
/// ```
/// use vardelay_process::SpatialGrid;
/// use vardelay_process::spatial::DiePosition;
///
/// let g = SpatialGrid::new(4, 4, 0.5);
/// let r = g.region_of(DiePosition::new(0.9, 0.1));
/// assert!(r < g.region_count());
/// // Adjacent regions are more correlated than distant ones.
/// assert!(g.region_correlation(0, 1) > g.region_correlation(0, 15));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialGrid {
    rows: usize,
    cols: usize,
    correlation_length: f64,
}

impl SpatialGrid {
    /// Creates a grid with the given correlation length (fraction of the
    /// die edge).
    ///
    /// # Panics
    ///
    /// Panics if `rows`/`cols` are zero or `correlation_length <= 0`.
    pub fn new(rows: usize, cols: usize, correlation_length: f64) -> Self {
        assert!(rows > 0 && cols > 0, "grid must be non-empty");
        assert!(
            correlation_length > 0.0 && correlation_length.is_finite(),
            "correlation length must be positive"
        );
        SpatialGrid {
            rows,
            cols,
            correlation_length,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of regions.
    pub fn region_count(&self) -> usize {
        self.rows * self.cols
    }

    /// The correlation length (die-edge units).
    pub fn correlation_length(&self) -> f64 {
        self.correlation_length
    }

    /// Region index containing a die position.
    pub fn region_of(&self, pos: DiePosition) -> usize {
        let col = ((pos.x * self.cols as f64) as usize).min(self.cols - 1);
        let row = ((pos.y * self.rows as f64) as usize).min(self.rows - 1);
        row * self.cols + col
    }

    /// Center position of region `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn region_center(&self, r: usize) -> DiePosition {
        assert!(r < self.region_count(), "region index out of range");
        let row = r / self.cols;
        let col = r % self.cols;
        DiePosition::new(
            (col as f64 + 0.5) / self.cols as f64,
            (row as f64 + 0.5) / self.rows as f64,
        )
    }

    /// Correlation between two regions: `exp(-dist / λ)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn region_correlation(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return 1.0;
        }
        let d = self.region_center(a).distance(&self.region_center(b));
        (-d / self.correlation_length).exp()
    }

    /// Full region-to-region correlation matrix.
    pub fn correlation_matrix(&self) -> SymMatrix {
        SymMatrix::from_fn(self.region_count(), |i, j| self.region_correlation(i, j))
    }

    /// Builds a reusable correlator (factorizes the region correlation
    /// matrix once).
    pub fn correlator(&self) -> SpatialCorrelator {
        SpatialCorrelator::new(self)
    }
}

/// Caches the Cholesky factor of a grid's region correlation matrix so
/// correlated region values can be generated per Monte-Carlo trial at
/// `O(n^2)` instead of refactorizing.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialCorrelator {
    chol: Cholesky,
}

impl SpatialCorrelator {
    /// Factorizes the grid's correlation matrix (with a tiny jitter so
    /// strongly-correlated grids remain factorizable).
    pub fn new(grid: &SpatialGrid) -> Self {
        let chol = grid
            .correlation_matrix()
            .cholesky(1e-10)
            .expect("exp-decay correlation matrices are PSD");
        SpatialCorrelator { chol }
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.chol.dim()
    }

    /// Transforms iid standard normals (one per region) into correlated
    /// region values with unit marginal variance.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != region_count()`.
    pub fn correlate(&self, z: &[f64]) -> Vec<f64> {
        self.chol.transform(z)
    }

    /// Allocation-free variant of [`SpatialCorrelator::correlate`]:
    /// writes the correlated values into `out`. Bit-identical to
    /// `correlate` for the same `z`.
    ///
    /// # Panics
    ///
    /// Panics if `z.len()` or `out.len()` differ from `region_count()`.
    pub fn correlate_into(&self, z: &[f64], out: &mut [f64]) {
        self.chol.transform_into(z, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vardelay_stats::normal::sample_standard_normal;

    #[test]
    fn region_lookup_covers_die() {
        let g = SpatialGrid::new(3, 5, 0.5);
        assert_eq!(g.region_count(), 15);
        assert_eq!(g.region_of(DiePosition::new(0.0, 0.0)), 0);
        assert_eq!(g.region_of(DiePosition::new(1.0, 1.0)), 14);
        // Out-of-range coordinates are clamped, not panicking.
        assert_eq!(g.region_of(DiePosition::new(2.0, -1.0)), 4);
    }

    #[test]
    fn correlation_decays_with_distance() {
        let g = SpatialGrid::new(1, 8, 0.3);
        let r01 = g.region_correlation(0, 1);
        let r07 = g.region_correlation(0, 7);
        assert!(r01 > r07);
        assert!(r01 < 1.0 && r07 > 0.0);
    }

    #[test]
    fn correlate_produces_expected_empirical_correlation() {
        let g = SpatialGrid::new(1, 4, 0.5);
        let corr = g.correlator();
        let want01 = g.region_correlation(0, 1);
        let mut rng = StdRng::seed_from_u64(21);
        let n = 100_000;
        let (mut s0, mut s1, mut s01, mut q0, mut q1) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            let z: Vec<f64> = (0..4).map(|_| sample_standard_normal(&mut rng)).collect();
            let v = corr.correlate(&z);
            s0 += v[0];
            s1 += v[1];
            s01 += v[0] * v[1];
            q0 += v[0] * v[0];
            q1 += v[1] * v[1];
        }
        let nf = n as f64;
        let (m0, m1) = (s0 / nf, s1 / nf);
        let cov = s01 / nf - m0 * m1;
        let sd0 = (q0 / nf - m0 * m0).sqrt();
        let sd1 = (q1 / nf - m1 * m1).sqrt();
        let rho = cov / (sd0 * sd1);
        assert!((rho - want01).abs() < 0.01, "rho {rho} want {want01}");
        assert!((sd0 - 1.0).abs() < 0.01, "unit marginal variance");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_grid() {
        let _ = SpatialGrid::new(0, 3, 0.5);
    }
}
