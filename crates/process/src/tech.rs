//! Technology parameter sets.
//!
//! The paper uses Berkeley Predictive Technology Model (BPTM) 70nm devices
//! \[9\]. We capture the handful of electrical parameters that determine
//! gate-delay statistics in an alpha-power-law world: supply voltage,
//! nominal threshold, the velocity-saturation exponent α, and a
//! fanout-4-style unit inverter delay that sets the absolute time scale.

use serde::{Deserialize, Serialize};

/// A CMOS technology node's electrical parameters.
///
/// All voltages are in volts, times in picoseconds, and geometry factors are
/// unitless multiples of the minimum device.
///
/// ```
/// use vardelay_process::Technology;
/// let t = Technology::bptm70();
/// assert_eq!(t.node_nm(), 70);
/// assert!(t.vdd() > t.vth0());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    name: String,
    node_nm: u32,
    vdd: f64,
    vth0: f64,
    alpha: f64,
    /// Delay of a minimum inverter driving one identical inverter (FO1), ps.
    tau_fo1_ps: f64,
    /// Pelgrom mismatch coefficient for σVth at minimum device size, volts.
    sigma_vth_rand_min_v: f64,
    /// Area of a minimum-size inverter in arbitrary normalized units.
    inv_area_unit: f64,
}

impl Technology {
    /// BPTM-70nm-like preset matching the paper's experimental setup.
    ///
    /// The absolute time scale (`tau_fo1_ps`) is calibrated so a
    /// logic-depth-8 inverter-chain stage plus flip-flop overhead lands near
    /// the paper's ~200 ps stage delay (Table I).
    pub fn bptm70() -> Self {
        Technology {
            name: "bptm70".to_owned(),
            node_nm: 70,
            vdd: 0.9,
            vth0: 0.20,
            alpha: 1.3,
            tau_fo1_ps: 8.0,
            sigma_vth_rand_min_v: 0.035,
            inv_area_unit: 1.0,
        }
    }

    /// A 100nm-like node with milder variation, for cross-node comparisons.
    pub fn generic100() -> Self {
        Technology {
            name: "generic100".to_owned(),
            node_nm: 100,
            vdd: 1.2,
            vth0: 0.26,
            alpha: 1.4,
            tau_fo1_ps: 12.0,
            sigma_vth_rand_min_v: 0.022,
            inv_area_unit: 1.0,
        }
    }

    /// A 45nm-like node with harsher variation, for trend extrapolation.
    pub fn generic45() -> Self {
        Technology {
            name: "generic45".to_owned(),
            node_nm: 45,
            vdd: 0.8,
            vth0: 0.22,
            alpha: 1.25,
            tau_fo1_ps: 5.0,
            sigma_vth_rand_min_v: 0.050,
            inv_area_unit: 1.0,
        }
    }

    /// Fully custom technology.
    ///
    /// # Panics
    ///
    /// Panics unless `vdd > vth0 > 0`, `alpha >= 1`, and the delay/mismatch
    /// parameters are positive.
    pub fn custom(
        name: &str,
        node_nm: u32,
        vdd: f64,
        vth0: f64,
        alpha: f64,
        tau_fo1_ps: f64,
        sigma_vth_rand_min_v: f64,
    ) -> Self {
        assert!(vth0 > 0.0 && vdd > vth0, "need vdd > vth0 > 0");
        assert!(alpha >= 1.0, "alpha-power exponent must be >= 1");
        assert!(tau_fo1_ps > 0.0, "unit delay must be positive");
        assert!(sigma_vth_rand_min_v >= 0.0, "mismatch sigma must be >= 0");
        Technology {
            name: name.to_owned(),
            node_nm,
            vdd,
            vth0,
            alpha,
            tau_fo1_ps,
            sigma_vth_rand_min_v,
            inv_area_unit: 1.0,
        }
    }

    /// Technology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Feature size in nanometers.
    pub fn node_nm(&self) -> u32 {
        self.node_nm
    }

    /// Supply voltage (V).
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Nominal threshold voltage (V).
    pub fn vth0(&self) -> f64 {
        self.vth0
    }

    /// Alpha-power-law exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// FO1 delay of a minimum inverter (ps) — the absolute time scale.
    pub fn tau_fo1_ps(&self) -> f64 {
        self.tau_fo1_ps
    }

    /// Random σVth of a minimum-size device (V).
    pub fn sigma_vth_rand_min_v(&self) -> f64 {
        self.sigma_vth_rand_min_v
    }

    /// Area of a minimum inverter (normalized units).
    pub fn inv_area_unit(&self) -> f64 {
        self.inv_area_unit
    }

    /// Gate overdrive `Vdd - Vth0` (V).
    #[inline]
    pub fn overdrive(&self) -> f64 {
        self.vdd - self.vth0
    }

    /// First-order fractional delay sensitivity to a Vth shift, per volt:
    /// `(1/d) * dd/dVth = alpha / (Vdd - Vth0)`.
    ///
    /// From the alpha-power law `d ∝ Vdd / (Vdd - Vth)^alpha`.
    #[inline]
    pub fn delay_vth_sensitivity(&self) -> f64 {
        self.alpha / self.overdrive()
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::bptm70()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for t in [
            Technology::bptm70(),
            Technology::generic100(),
            Technology::generic45(),
        ] {
            assert!(t.vdd() > t.vth0());
            assert!(t.alpha() >= 1.0);
            assert!(t.tau_fo1_ps() > 0.0);
            assert!(t.delay_vth_sensitivity() > 0.0);
        }
    }

    #[test]
    fn sensitivity_formula() {
        let t = Technology::bptm70();
        assert!((t.delay_vth_sensitivity() - 1.3 / 0.7).abs() < 1e-12);
    }

    #[test]
    fn smaller_nodes_have_more_mismatch() {
        assert!(
            Technology::generic45().sigma_vth_rand_min_v()
                > Technology::bptm70().sigma_vth_rand_min_v()
        );
        assert!(
            Technology::bptm70().sigma_vth_rand_min_v()
                > Technology::generic100().sigma_vth_rand_min_v()
        );
    }

    #[test]
    #[should_panic(expected = "vdd > vth0")]
    fn custom_validates_voltages() {
        let _ = Technology::custom("bad", 70, 0.2, 0.3, 1.3, 8.0, 0.03);
    }
}
