//! Per-die sampling of all process-variation components.
//!
//! A [`ProcessSampler`] draws one [`DieSample`] per Monte-Carlo trial: the
//! shared inter-die shift, one correlated systematic value per spatial
//! region, and (on demand) independent random shifts per gate. The total
//! ΔVth seen by a gate is the sum of the three components, which is exactly
//! the decomposition of §2.1.

use rand::Rng;

use vardelay_stats::batch::{fill_standard_normals_bm, fill_standard_normals_inv_cdf};
use vardelay_stats::normal::sample_standard_normal;
use vardelay_stats::strata::mean_shift_weight;

use crate::pelgrom::pelgrom_sigma;
use crate::spatial::{DiePosition, SpatialCorrelator, SpatialGrid};
use crate::variation::VariationConfig;

/// One die's worth of shared variation: the inter-die shift and the
/// per-region systematic shifts (all in volts of ΔVth).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DieSample {
    /// Inter-die ΔVth shared by every gate on the die (V).
    pub global_dvth: f64,
    /// Per-region systematic ΔVth (V); empty if no systematic component.
    pub region_dvth: Vec<f64>,
}

impl DieSample {
    /// The shared (non-random) ΔVth seen by a gate in region `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range while systematic variation is
    /// configured.
    pub fn shared_dvth(&self, region: usize) -> f64 {
        if self.region_dvth.is_empty() {
            self.global_dvth
        } else {
            self.global_dvth + self.region_dvth[region]
        }
    }
}

/// Draws per-die and per-gate variation samples.
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use vardelay_process::{ProcessSampler, SpatialGrid, VariationConfig};
///
/// let var = VariationConfig::combined(20.0, 35.0, 15.0);
/// let sampler = ProcessSampler::new(var, Some(SpatialGrid::new(4, 4, 0.5)));
/// let mut rng = StdRng::seed_from_u64(7);
/// let die = sampler.sample_die(&mut rng);
/// assert_eq!(die.region_dvth.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct ProcessSampler {
    variation: VariationConfig,
    grid: Option<SpatialGrid>,
    correlator: Option<SpatialCorrelator>,
}

impl ProcessSampler {
    /// Creates a sampler. A grid is required only when the variation config
    /// has a systematic component; passing `None` with systematic variation
    /// uses a default 4x4 grid.
    pub fn new(variation: VariationConfig, grid: Option<SpatialGrid>) -> Self {
        let grid = if variation.has_systematic() {
            Some(grid.unwrap_or_else(|| SpatialGrid::new(4, 4, variation.correlation_length())))
        } else {
            grid
        };
        let correlator = grid.as_ref().map(SpatialGrid::correlator);
        ProcessSampler {
            variation,
            grid,
            correlator,
        }
    }

    /// The variation configuration.
    pub fn variation(&self) -> &VariationConfig {
        &self.variation
    }

    /// The spatial grid, if any.
    pub fn grid(&self) -> Option<&SpatialGrid> {
        self.grid.as_ref()
    }

    /// Region index for a die position (0 when no grid is configured).
    pub fn region_of(&self, pos: DiePosition) -> usize {
        self.grid.as_ref().map_or(0, |g| g.region_of(pos))
    }

    /// Draws the shared components for one die.
    pub fn sample_die<R: Rng + ?Sized>(&self, rng: &mut R) -> DieSample {
        let mut die = DieSample {
            global_dvth: 0.0,
            region_dvth: Vec::new(),
        };
        let mut z = Vec::new();
        self.sample_die_into(rng, &mut z, &mut die);
        die
    }

    /// Number of correlated regions a [`DieSample`] from this sampler
    /// carries (0 when no systematic component is configured).
    pub fn region_value_count(&self) -> usize {
        if self.variation.has_systematic() {
            self.correlator
                .as_ref()
                .expect("systematic variation implies a grid")
                .region_count()
        } else {
            0
        }
    }

    /// Allocation-free variant of [`ProcessSampler::sample_die`]: draws
    /// one die's shared components into `die`, using `z` as scratch for
    /// the iid region normals. Both buffers are resized on first use and
    /// reused untouched afterwards, so a Monte-Carlo loop that passes the
    /// same buffers performs no per-trial heap allocation. The RNG
    /// consumption and arithmetic are identical to `sample_die`, so the
    /// two produce bit-identical samples from the same stream.
    pub fn sample_die_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        z: &mut Vec<f64>,
        die: &mut DieSample,
    ) {
        die.global_dvth = if self.variation.has_inter() {
            self.variation.sigma_vth_inter_v() * sample_standard_normal(rng)
        } else {
            0.0
        };
        if self.variation.has_systematic() {
            let corr = self
                .correlator
                .as_ref()
                .expect("systematic variation implies a grid");
            z.resize(corr.region_count(), 0.0);
            die.region_dvth.resize(corr.region_count(), 0.0);
            for zi in z.iter_mut() {
                *zi = sample_standard_normal(rng);
            }
            corr.correlate_into(z, &mut die.region_dvth);
            let s = self.variation.sigma_vth_sys_v();
            for v in &mut die.region_dvth {
                *v *= s;
            }
        } else {
            die.region_dvth.clear();
        }
    }

    /// The **trial-plan** die sampler (v1 kernel): the strategy-modified
    /// variant of [`ProcessSampler::sample_die_into`]. The RNG is
    /// consumed exactly as the plain sampler does (one draw per die-level
    /// dim, in the same order) and the modifications are overlaid on the
    /// stream:
    ///
    /// * each die-level standard normal becomes
    ///   `sign * lead.get(dim).unwrap_or(drawn)` — `lead` carries the
    ///   stratified/Sobol overrides for the leading dims (dim 0 is the
    ///   inter-die normal when configured, then the region normals), and
    ///   `sign` is the antithetic reflection (always `1.0` when `lead`
    ///   is non-empty);
    /// * when `shift != 0` and an inter-die component is configured, the
    ///   inter-die normal is mean-shifted by `shift` sigmas and the
    ///   trial's importance weight (the returned value) is the
    ///   likelihood ratio `exp(-shift·z - shift²/2)`; otherwise the
    ///   weight is `1.0`.
    pub fn sample_die_into_plan<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sign: f64,
        lead: &[f64],
        shift: f64,
        z: &mut Vec<f64>,
        die: &mut DieSample,
    ) -> f64 {
        let mut weight = 1.0;
        let mut dim = 0usize;
        die.global_dvth = if self.variation.has_inter() {
            let drawn = sample_standard_normal(rng);
            let mut n0 = sign * lead.get(dim).copied().unwrap_or(drawn);
            dim += 1;
            if shift != 0.0 {
                weight = mean_shift_weight(shift, n0);
                n0 += shift;
            }
            self.variation.sigma_vth_inter_v() * n0
        } else {
            0.0
        };
        if self.variation.has_systematic() {
            let corr = self
                .correlator
                .as_ref()
                .expect("systematic variation implies a grid");
            z.resize(corr.region_count(), 0.0);
            die.region_dvth.resize(corr.region_count(), 0.0);
            for zi in z.iter_mut() {
                let drawn = sample_standard_normal(rng);
                *zi = sign * lead.get(dim).copied().unwrap_or(drawn);
                dim += 1;
            }
            corr.correlate_into(z, &mut die.region_dvth);
            let s = self.variation.sigma_vth_sys_v();
            for v in &mut die.region_dvth {
                *v *= s;
            }
        } else {
            die.region_dvth.clear();
        }
        weight
    }

    /// The **trial-plan** die sampler under the v2 kernel: fills the
    /// die-level normals exactly as [`ProcessSampler::sample_die_into_v2`]
    /// (one batch Box–Muller fill), then overlays the plan modifications
    /// — leading-dim overrides, antithetic sign, inter-die mean shift —
    /// with the same semantics as
    /// [`ProcessSampler::sample_die_into_plan`]. Returns the trial's
    /// importance weight.
    pub fn sample_die_into_v2_plan<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sign: f64,
        lead: &[f64],
        shift: f64,
        z: &mut Vec<f64>,
        die: &mut DieSample,
    ) -> f64 {
        let n_inter = usize::from(self.variation.has_inter());
        let regions = self.region_value_count();
        if n_inter + regions == 0 {
            die.global_dvth = 0.0;
            die.region_dvth.clear();
            return 1.0;
        }
        z.resize(n_inter + regions, 0.0);
        fill_standard_normals_bm(rng, z);
        for (zi, &l) in z.iter_mut().zip(lead) {
            *zi = l;
        }
        if sign != 1.0 {
            for zi in z.iter_mut() {
                *zi *= sign;
            }
        }
        let mut weight = 1.0;
        die.global_dvth = if n_inter == 1 {
            let mut n0 = z[0];
            if shift != 0.0 {
                weight = mean_shift_weight(shift, n0);
                n0 += shift;
            }
            self.variation.sigma_vth_inter_v() * n0
        } else {
            0.0
        };
        if regions > 0 {
            let corr = self
                .correlator
                .as_ref()
                .expect("systematic variation implies a grid");
            die.region_dvth.resize(regions, 0.0);
            corr.correlate_into(&z[n_inter..], &mut die.region_dvth);
            let s = self.variation.sigma_vth_sys_v();
            for v in &mut die.region_dvth {
                *v *= s;
            }
        } else {
            die.region_dvth.clear();
        }
        weight
    }

    /// The **v2-kernel** die sampler: same component semantics as
    /// [`ProcessSampler::sample_die_into`] (inter-die shift first, then
    /// the correlated region values), but every normal comes from one
    /// batch pair-producing Box–Muller fill over the whole die — the
    /// inter-die draw and the iid region draws share lanes, consuming
    /// `2·ceil(count/2)` uniforms total instead of `2·count`. Different
    /// (but equally deterministic) bytes than the v1 sampler; `z` must
    /// be the same scratch buffer across calls for the zero-allocation
    /// contract, and is sized to `region_count + 1` here.
    pub fn sample_die_into_v2<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        z: &mut Vec<f64>,
        die: &mut DieSample,
    ) {
        let n_inter = usize::from(self.variation.has_inter());
        let regions = self.region_value_count();
        if n_inter + regions == 0 {
            die.global_dvth = 0.0;
            die.region_dvth.clear();
            return;
        }
        z.resize(n_inter + regions, 0.0);
        fill_standard_normals_bm(rng, z);
        die.global_dvth = if n_inter == 1 {
            self.variation.sigma_vth_inter_v() * z[0]
        } else {
            0.0
        };
        if regions > 0 {
            let corr = self
                .correlator
                .as_ref()
                .expect("systematic variation implies a grid");
            die.region_dvth.resize(regions, 0.0);
            corr.correlate_into(&z[n_inter..], &mut die.region_dvth);
            let s = self.variation.sigma_vth_sys_v();
            for v in &mut die.region_dvth {
                *v *= s;
            }
        } else {
            die.region_dvth.clear();
        }
    }

    /// The **v3-kernel** die sampler: same component semantics and draw
    /// order as [`ProcessSampler::sample_die_into_v2`], but every normal
    /// comes from one batch **inverse-CDF** fill — the wide kernel draws
    /// all of a trial's normals (die, latch, gate) through the same
    /// branch-free transform so the whole fill phase stays vectorizable.
    /// One uniform per normal; different (but equally deterministic)
    /// bytes than both the v1 and v2 samplers whenever a die-level
    /// component is configured.
    pub fn sample_die_into_v3<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        z: &mut Vec<f64>,
        die: &mut DieSample,
    ) {
        let n_inter = usize::from(self.variation.has_inter());
        let regions = self.region_value_count();
        if n_inter + regions == 0 {
            die.global_dvth = 0.0;
            die.region_dvth.clear();
            return;
        }
        z.resize(n_inter + regions, 0.0);
        fill_standard_normals_inv_cdf(rng, z);
        die.global_dvth = if n_inter == 1 {
            self.variation.sigma_vth_inter_v() * z[0]
        } else {
            0.0
        };
        if regions > 0 {
            let corr = self
                .correlator
                .as_ref()
                .expect("systematic variation implies a grid");
            die.region_dvth.resize(regions, 0.0);
            corr.correlate_into(&z[n_inter..], &mut die.region_dvth);
            let s = self.variation.sigma_vth_sys_v();
            for v in &mut die.region_dvth {
                *v *= s;
            }
        } else {
            die.region_dvth.clear();
        }
    }

    /// The **trial-plan** die sampler under the v3 kernel: fills the
    /// die-level normals exactly as [`ProcessSampler::sample_die_into_v3`]
    /// (one batch inverse-CDF fill), then overlays the plan modifications
    /// — leading-dim overrides, antithetic sign, inter-die mean shift —
    /// with the same semantics as
    /// [`ProcessSampler::sample_die_into_plan`]. Returns the trial's
    /// importance weight.
    pub fn sample_die_into_v3_plan<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sign: f64,
        lead: &[f64],
        shift: f64,
        z: &mut Vec<f64>,
        die: &mut DieSample,
    ) -> f64 {
        let n_inter = usize::from(self.variation.has_inter());
        let regions = self.region_value_count();
        if n_inter + regions == 0 {
            die.global_dvth = 0.0;
            die.region_dvth.clear();
            return 1.0;
        }
        z.resize(n_inter + regions, 0.0);
        fill_standard_normals_inv_cdf(rng, z);
        for (zi, &l) in z.iter_mut().zip(lead) {
            *zi = l;
        }
        if sign != 1.0 {
            for zi in z.iter_mut() {
                *zi *= sign;
            }
        }
        let mut weight = 1.0;
        die.global_dvth = if n_inter == 1 {
            let mut n0 = z[0];
            if shift != 0.0 {
                weight = mean_shift_weight(shift, n0);
                n0 += shift;
            }
            self.variation.sigma_vth_inter_v() * n0
        } else {
            0.0
        };
        if regions > 0 {
            let corr = self
                .correlator
                .as_ref()
                .expect("systematic variation implies a grid");
            die.region_dvth.resize(regions, 0.0);
            corr.correlate_into(&z[n_inter..], &mut die.region_dvth);
            let s = self.variation.sigma_vth_sys_v();
            for v in &mut die.region_dvth {
                *v *= s;
            }
        } else {
            die.region_dvth.clear();
        }
        weight
    }

    /// Draws the independent random ΔVth (V) for one gate of size factor
    /// `x` (Pelgrom scaling).
    ///
    /// # Panics
    ///
    /// Panics if `x <= 0`.
    pub fn sample_gate_random<R: Rng + ?Sized>(&self, rng: &mut R, x: f64) -> f64 {
        if !self.variation.has_random() {
            return 0.0;
        }
        pelgrom_sigma(self.variation.sigma_vth_rand_v(), x) * sample_standard_normal(rng)
    }

    /// Total ΔVth for a gate: shared (inter + region) plus freshly-drawn
    /// random component.
    ///
    /// # Panics
    ///
    /// Panics if `x <= 0` or the region index is invalid.
    pub fn sample_gate_total<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        die: &DieSample,
        region: usize,
        x: f64,
    ) -> f64 {
        die.shared_dvth(region) + self.sample_gate_random(rng, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vardelay_stats::RunningStats;

    #[test]
    fn no_variation_samples_zero() {
        let s = ProcessSampler::new(VariationConfig::none(), None);
        let mut rng = StdRng::seed_from_u64(1);
        let die = s.sample_die(&mut rng);
        assert_eq!(die.global_dvth, 0.0);
        assert!(die.region_dvth.is_empty());
        assert_eq!(s.sample_gate_random(&mut rng, 1.0), 0.0);
    }

    #[test]
    fn inter_die_sigma_matches_config() {
        let s = ProcessSampler::new(VariationConfig::inter_only(40.0), None);
        let mut rng = StdRng::seed_from_u64(2);
        let stats: RunningStats = (0..50_000)
            .map(|_| s.sample_die(&mut rng).global_dvth)
            .collect();
        assert!(
            (stats.sample_sd() - 0.040).abs() < 0.001,
            "{}",
            stats.sample_sd()
        );
        assert!(stats.mean().abs() < 0.001);
    }

    #[test]
    fn random_component_shrinks_with_size() {
        let s = ProcessSampler::new(VariationConfig::random_only(35.0), None);
        let mut rng = StdRng::seed_from_u64(3);
        let sd_x1: RunningStats = (0..40_000)
            .map(|_| s.sample_gate_random(&mut rng, 1.0))
            .collect();
        let sd_x4: RunningStats = (0..40_000)
            .map(|_| s.sample_gate_random(&mut rng, 4.0))
            .collect();
        assert!(
            (sd_x4.sample_sd() - sd_x1.sample_sd() / 2.0).abs() < 0.001,
            "pelgrom: {} vs {}",
            sd_x4.sample_sd(),
            sd_x1.sample_sd()
        );
    }

    #[test]
    fn systematic_gets_default_grid() {
        let s = ProcessSampler::new(VariationConfig::combined(0.0, 0.0, 15.0), None);
        assert!(s.grid().is_some());
        let mut rng = StdRng::seed_from_u64(4);
        let die = s.sample_die(&mut rng);
        assert_eq!(die.region_dvth.len(), 16);
        // Per-region sd should be ~15 mV.
        let stats: RunningStats = (0..20_000)
            .map(|_| s.sample_die(&mut rng).region_dvth[0])
            .collect();
        assert!((stats.sample_sd() - 0.015).abs() < 5e-4);
    }

    #[test]
    fn v2_die_sampler_matches_component_moments() {
        // Same semantics as the v1 sampler — inter-die sd, per-region
        // sd — just a different (pair-Box–Muller) normal source.
        let s = ProcessSampler::new(VariationConfig::combined(20.0, 35.0, 15.0), None);
        let mut rng = StdRng::seed_from_u64(0x2D1E);
        let mut z = Vec::new();
        let mut die = DieSample::default();
        let mut inter = RunningStats::new();
        let mut region0 = RunningStats::new();
        for _ in 0..30_000 {
            s.sample_die_into_v2(&mut rng, &mut z, &mut die);
            inter.push(die.global_dvth);
            region0.push(die.region_dvth[0]);
        }
        assert!((inter.sample_sd() - 0.020).abs() < 5e-4, "{inter}");
        assert!((region0.sample_sd() - 0.015).abs() < 5e-4, "{region0}");
        assert!(inter.mean().abs() < 5e-4);

        // No variation: nothing drawn, nothing allocated.
        let none = ProcessSampler::new(VariationConfig::none(), None);
        none.sample_die_into_v2(&mut rng, &mut z, &mut die);
        assert_eq!(die.global_dvth, 0.0);
        assert!(die.region_dvth.is_empty());
    }

    #[test]
    fn v3_die_sampler_matches_component_moments_and_differs_from_v2() {
        // Same semantics again — only the normal source changes (batch
        // inverse-CDF) — so the component moments must survive, and the
        // per-seed bytes must differ from the v2 (Box–Muller) fill.
        let s = ProcessSampler::new(VariationConfig::combined(20.0, 35.0, 15.0), None);
        let mut rng = StdRng::seed_from_u64(0x3D1E);
        let mut z = Vec::new();
        let mut die = DieSample::default();
        let mut inter = RunningStats::new();
        let mut region0 = RunningStats::new();
        for _ in 0..30_000 {
            s.sample_die_into_v3(&mut rng, &mut z, &mut die);
            inter.push(die.global_dvth);
            region0.push(die.region_dvth[0]);
        }
        assert!((inter.sample_sd() - 0.020).abs() < 5e-4, "{inter}");
        assert!((region0.sample_sd() - 0.015).abs() < 5e-4, "{region0}");
        assert!(inter.mean().abs() < 5e-4);

        let mut a = DieSample::default();
        let mut b = DieSample::default();
        for seed in 0..8u64 {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            s.sample_die_into_v2(&mut r1, &mut z, &mut a);
            s.sample_die_into_v3(&mut r2, &mut z, &mut b);
            assert_ne!(a, b, "v3 die bytes must not coincide with v2");
        }

        // No variation: nothing drawn, nothing allocated.
        let none = ProcessSampler::new(VariationConfig::none(), None);
        none.sample_die_into_v3(&mut rng, &mut z, &mut die);
        assert_eq!(die.global_dvth, 0.0);
        assert!(die.region_dvth.is_empty());
    }

    #[test]
    fn plan_sampler_with_identity_mods_matches_plain_bit_for_bit() {
        // sign 1, no overrides, no shift: the plan sampler must replay
        // the plain stream exactly (weight 1, identical bits) under both
        // kernels' fills.
        let s = ProcessSampler::new(VariationConfig::combined(20.0, 35.0, 15.0), None);
        let mut za = Vec::new();
        let mut zb = Vec::new();
        let mut a = DieSample::default();
        let mut b = DieSample::default();
        for seed in 0..20u64 {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            s.sample_die_into(&mut r1, &mut za, &mut a);
            let w = s.sample_die_into_plan(&mut r2, 1.0, &[], 0.0, &mut zb, &mut b);
            assert_eq!(w, 1.0);
            assert_eq!(a, b);
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            s.sample_die_into_v2(&mut r1, &mut za, &mut a);
            let w = s.sample_die_into_v2_plan(&mut r2, 1.0, &[], 0.0, &mut zb, &mut b);
            assert_eq!(w, 1.0);
            assert_eq!(a, b);
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            s.sample_die_into_v3(&mut r1, &mut za, &mut a);
            let w = s.sample_die_into_v3_plan(&mut r2, 1.0, &[], 0.0, &mut zb, &mut b);
            assert_eq!(w, 1.0);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn antithetic_sign_reflects_every_die_component() {
        // The die is linear in its standard normals, so sign -1 must
        // negate the inter-die shift and every region value exactly.
        let s = ProcessSampler::new(VariationConfig::combined(20.0, 0.0, 15.0), None);
        let mut za = Vec::new();
        let mut zb = Vec::new();
        let mut a = DieSample::default();
        let mut b = DieSample::default();
        for seed in [3u64, 0xA5A5] {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            s.sample_die_into_plan(&mut r1, 1.0, &[], 0.0, &mut za, &mut a);
            s.sample_die_into_plan(&mut r2, -1.0, &[], 0.0, &mut zb, &mut b);
            assert_eq!(a.global_dvth, -b.global_dvth);
            for (x, y) in a.region_dvth.iter().zip(&b.region_dvth) {
                assert_eq!(*x, -*y, "region values must reflect");
            }
        }
    }

    #[test]
    fn lead_overrides_replace_the_leading_dims() {
        let s = ProcessSampler::new(VariationConfig::inter_only(40.0), None);
        let mut z = Vec::new();
        let mut die = DieSample::default();
        let mut rng = StdRng::seed_from_u64(9);
        let w = s.sample_die_into_plan(&mut rng, 1.0, &[2.5], 0.0, &mut z, &mut die);
        assert_eq!(w, 1.0);
        assert!((die.global_dvth - 0.040 * 2.5).abs() < 1e-15);
    }

    #[test]
    fn blockade_shift_carries_the_likelihood_ratio() {
        let s = ProcessSampler::new(VariationConfig::inter_only(40.0), None);
        let shift = 3.0;
        let mut z = Vec::new();
        let mut plain = DieSample::default();
        let mut shifted = DieSample::default();
        for seed in 0..50u64 {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            s.sample_die_into(&mut r1, &mut z, &mut plain);
            let w = s.sample_die_into_plan(&mut r2, 1.0, &[], shift, &mut z, &mut shifted);
            let z0 = plain.global_dvth / 0.040;
            assert!((shifted.global_dvth - 0.040 * (z0 + shift)).abs() < 1e-12);
            let want = vardelay_stats::mean_shift_weight(shift, z0);
            assert!((w - want).abs() / want < 1e-9, "weight {w} vs {want}");
        }
    }

    #[test]
    fn shared_dvth_combines_components() {
        let die = DieSample {
            global_dvth: 0.01,
            region_dvth: vec![0.002, -0.003],
        };
        assert!((die.shared_dvth(0) - 0.012).abs() < 1e-15);
        assert!((die.shared_dvth(1) - 0.007).abs() < 1e-15);
    }
}
