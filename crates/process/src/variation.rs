//! Process-variation configuration: the three components of §2.1.
//!
//! * **Inter-die** — one shared shift per die; moves every stage delay in
//!   the same direction and makes stage delays perfectly correlated.
//! * **Random intra-die** — independent per device (random dopant
//!   fluctuation \[6\]); makes stage delays uncorrelated and averages out
//!   along deep logic paths.
//! * **Systematic intra-die** — spatially correlated across the die
//!   (lithography-driven W/L/Tox gradients \[1\]); partially correlates
//!   nearby stages.

use serde::{Deserialize, Serialize};

/// Standard deviations of the threshold-voltage variation components.
///
/// Constructors take millivolts (the unit the paper quotes, e.g.
/// "σVthInter = 40mV" in Fig. 5); accessors return volts for use in delay
/// models.
///
/// ```
/// use vardelay_process::VariationConfig;
/// let v = VariationConfig::combined(20.0, 35.0, 15.0);
/// assert!((v.sigma_vth_inter_v() - 0.020).abs() < 1e-12);
/// assert!(v.has_systematic());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationConfig {
    sigma_inter_v: f64,
    sigma_rand_v: f64,
    sigma_sys_v: f64,
    /// Spatial correlation length of the systematic component, as a
    /// fraction of the die edge (0.5 = correlation decays to 1/e across
    /// half the die).
    correlation_length: f64,
}

impl VariationConfig {
    const DEFAULT_CORR_LENGTH: f64 = 0.5;

    /// No variation at all — the deterministic corner.
    pub fn none() -> Self {
        Self::combined(0.0, 0.0, 0.0)
    }

    /// Only random intra-die variation (Fig. 2(a), Fig. 5 "Only Random").
    ///
    /// # Panics
    ///
    /// Panics if the value is negative or not finite.
    pub fn random_only(sigma_rand_mv: f64) -> Self {
        Self::combined(0.0, sigma_rand_mv, 0.0)
    }

    /// Only inter-die variation (Fig. 2(b), Fig. 5 "Only Inter-die").
    ///
    /// # Panics
    ///
    /// Panics if the value is negative or not finite.
    pub fn inter_only(sigma_inter_mv: f64) -> Self {
        Self::combined(sigma_inter_mv, 0.0, 0.0)
    }

    /// All three components (Fig. 2(c)).
    ///
    /// # Panics
    ///
    /// Panics if any value is negative or not finite.
    pub fn combined(sigma_inter_mv: f64, sigma_rand_mv: f64, sigma_sys_mv: f64) -> Self {
        for (label, v) in [
            ("inter", sigma_inter_mv),
            ("rand", sigma_rand_mv),
            ("sys", sigma_sys_mv),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "sigma_{label} must be finite and non-negative, got {v}"
            );
        }
        VariationConfig {
            sigma_inter_v: sigma_inter_mv * 1e-3,
            sigma_rand_v: sigma_rand_mv * 1e-3,
            sigma_sys_v: sigma_sys_mv * 1e-3,
            correlation_length: Self::DEFAULT_CORR_LENGTH,
        }
    }

    /// The paper's default scenario for model verification: moderate
    /// inter-die, RDF-dominated random intra-die, and a systematic
    /// component (Fig. 2(c), Table I "inter + intra").
    pub fn nominal_sub100nm() -> Self {
        Self::combined(20.0, 35.0, 15.0)
    }

    /// Returns a copy with a different spatial correlation length
    /// (fraction of the die edge).
    ///
    /// # Panics
    ///
    /// Panics unless `length > 0`.
    pub fn with_correlation_length(mut self, length: f64) -> Self {
        assert!(
            length.is_finite() && length > 0.0,
            "correlation length must be positive"
        );
        self.correlation_length = length;
        self
    }

    /// σVth of the inter-die component (V).
    #[inline]
    pub fn sigma_vth_inter_v(&self) -> f64 {
        self.sigma_inter_v
    }

    /// σVth of the random intra-die component at minimum device size (V).
    #[inline]
    pub fn sigma_vth_rand_v(&self) -> f64 {
        self.sigma_rand_v
    }

    /// σVth of the systematic (spatially correlated) component (V).
    #[inline]
    pub fn sigma_vth_sys_v(&self) -> f64 {
        self.sigma_sys_v
    }

    /// Spatial correlation length (fraction of the die edge).
    #[inline]
    pub fn correlation_length(&self) -> f64 {
        self.correlation_length
    }

    /// Whether any inter-die variation is configured.
    #[inline]
    pub fn has_inter(&self) -> bool {
        self.sigma_inter_v > 0.0
    }

    /// Whether any random intra-die variation is configured.
    #[inline]
    pub fn has_random(&self) -> bool {
        self.sigma_rand_v > 0.0
    }

    /// Whether any systematic intra-die variation is configured.
    #[inline]
    pub fn has_systematic(&self) -> bool {
        self.sigma_sys_v > 0.0
    }

    /// Total σVth if all components applied to a single minimum device
    /// (components are independent, so variances add).
    pub fn sigma_vth_total_v(&self) -> f64 {
        (self.sigma_inter_v.powi(2) + self.sigma_rand_v.powi(2) + self.sigma_sys_v.powi(2)).sqrt()
    }
}

impl Default for VariationConfig {
    fn default() -> Self {
        Self::nominal_sub100nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_flags() {
        let r = VariationConfig::random_only(35.0);
        assert!(r.has_random() && !r.has_inter() && !r.has_systematic());
        let i = VariationConfig::inter_only(40.0);
        assert!(i.has_inter() && !i.has_random());
        assert!((i.sigma_vth_inter_v() - 0.040).abs() < 1e-15);
    }

    #[test]
    fn total_sigma_adds_in_quadrature() {
        let v = VariationConfig::combined(30.0, 40.0, 0.0);
        assert!((v.sigma_vth_total_v() - 0.050).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_sigma() {
        let _ = VariationConfig::random_only(-1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_correlation_length() {
        let _ = VariationConfig::none().with_correlation_length(0.0);
    }
}
