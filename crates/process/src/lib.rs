//! Technology and process-variation models for sub-100nm statistical timing.
//!
//! This crate is the "silicon" substrate of the workspace. The paper draws
//! per-stage delay statistics from SPICE Monte-Carlo on 70nm BPTM transistor
//! models; we replace that with a gate-level model whose knobs map directly
//! onto the paper's experiments:
//!
//! * [`tech`] — technology parameters (supply, threshold, alpha-power-law
//!   exponent, unit delays), with a BPTM-70nm-like preset.
//! * [`variation`] — the three variation components of §2.1: **inter-die**
//!   (shifts every gate on a die together), **random intra-die** (independent
//!   per gate, e.g. random dopant fluctuation), and **systematic intra-die**
//!   (spatially correlated across the die).
//! * [`pelgrom`] — Pelgrom-law scaling of random σVth with device size
//!   (upsizing a gate reduces its random variability as `1/sqrt(x)`).
//! * [`delay_model`] — alpha-power-law gate delay and its first-order
//!   sensitivity to threshold-voltage shifts.
//! * [`spatial`] — a die grid with exponential distance-decay correlation
//!   for the systematic component.
//! * [`sample`] — per-die sampling of all variation components for
//!   Monte-Carlo runs.
//!
//! # Example
//!
//! ```
//! use vardelay_process::{Technology, VariationConfig};
//!
//! let tech = Technology::bptm70();
//! let var = VariationConfig::combined(20.0, 35.0, 15.0);
//! // Fractional delay sensitivity per volt of Vth shift:
//! let s = tech.delay_vth_sensitivity();
//! assert!(s > 0.5 && s < 10.0);
//! assert!(var.sigma_vth_inter_v() > 0.0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod delay_model;
pub mod pelgrom;
pub mod sample;
pub mod spatial;
pub mod tech;
pub mod variation;

pub use delay_model::{
    slowdown_factor_approx, slowdown_factor_approx_fma, slowdown_factors_approx_into,
    slowdown_factors_shift_approx_into, AlphaPowerDelay,
};
pub use pelgrom::pelgrom_sigma;
pub use sample::{DieSample, ProcessSampler};
pub use spatial::{SpatialCorrelator, SpatialGrid};
pub use tech::Technology;
pub use variation::VariationConfig;
