//! Alpha-power-law gate delay model and its variation sensitivities.
//!
//! The Sakurai–Newton alpha-power law gives the drain current of a
//! velocity-saturated MOSFET as `I ∝ (W/L)(Vdd - Vth)^α`, hence a gate
//! delay of
//!
//! ```text
//! d = k · C_load · Vdd / ( x · (Vdd - Vth)^α )
//! ```
//!
//! where `x` is the drive-strength (size) factor. Linearizing around the
//! nominal threshold gives the fractional sensitivity
//! `∂d/∂Vth / d = α / (Vdd - Vth)`, the quantity that converts σVth into
//! σdelay throughout the workspace.

use serde::{Deserialize, Serialize};

use crate::tech::Technology;

/// Alpha-power-law delay evaluator bound to a [`Technology`].
///
/// ```
/// use vardelay_process::{AlphaPowerDelay, Technology};
/// let m = AlphaPowerDelay::new(Technology::bptm70());
/// let d_nom = m.gate_delay(1.0, 1.0, 0.0);
/// // A +50 mV Vth shift slows the gate down.
/// assert!(m.gate_delay(1.0, 1.0, 0.050) > d_nom);
/// // Doubling drive at fixed load halves delay.
/// assert!((m.gate_delay(2.0, 1.0, 0.0) - d_nom / 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlphaPowerDelay {
    tech: Technology,
    /// Proportionality constant chosen so `gate_delay(1, 1, 0)` equals the
    /// technology's FO1 delay.
    k: f64,
}

impl AlphaPowerDelay {
    /// Binds the model to a technology, calibrating the constant so that a
    /// minimum inverter driving a unit load at nominal Vth has exactly the
    /// technology's FO1 delay.
    pub fn new(tech: Technology) -> Self {
        // d(1, 1, 0) = k * 1 * vdd / (vdd - vth0)^alpha  ==  tau_fo1
        let k = tech.tau_fo1_ps() * tech.overdrive().powf(tech.alpha()) / tech.vdd();
        AlphaPowerDelay { tech, k }
    }

    /// The bound technology.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// Gate delay (ps) at drive factor `x`, normalized load `c_load`
    /// (in units of a minimum inverter's input capacitance), and
    /// threshold shift `dvth` (V).
    ///
    /// # Panics
    ///
    /// Panics if `x <= 0`, `c_load < 0`, or the shifted threshold reaches
    /// the supply (the gate would not switch).
    pub fn gate_delay(&self, x: f64, c_load: f64, dvth: f64) -> f64 {
        assert!(x > 0.0, "drive factor must be positive");
        assert!(c_load >= 0.0, "load must be non-negative");
        let vth = self.tech.vth0() + dvth;
        let od = self.tech.vdd() - vth;
        assert!(
            od > 0.0,
            "threshold shift {dvth} V pushes Vth past the supply"
        );
        self.k * c_load * self.tech.vdd() / (x * od.powf(self.tech.alpha()))
    }

    /// Nominal gate delay (ps) — no threshold shift.
    #[inline]
    pub fn nominal_delay(&self, x: f64, c_load: f64) -> f64 {
        self.gate_delay(x, c_load, 0.0)
    }

    /// First-order (linearized) delay under a threshold shift:
    /// `d ≈ d_nom · (1 + s · dvth)` with `s = α/(Vdd − Vth0)`.
    ///
    /// This is the model the SSTA engine uses; [`Self::gate_delay`] is the
    /// "exact" nonlinear evaluation the Monte-Carlo engine uses, so the two
    /// engines diverge exactly where the paper's Gaussian assumption does.
    #[inline]
    pub fn linearized_delay(&self, x: f64, c_load: f64, dvth: f64) -> f64 {
        self.nominal_delay(x, c_load) * (1.0 + self.tech.delay_vth_sensitivity() * dvth)
    }

    /// Absolute delay sensitivity `∂d/∂Vth` (ps per volt) at nominal.
    #[inline]
    pub fn delay_sensitivity_abs(&self, x: f64, c_load: f64) -> f64 {
        self.nominal_delay(x, c_load) * self.tech.delay_vth_sensitivity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AlphaPowerDelay {
        AlphaPowerDelay::new(Technology::bptm70())
    }

    #[test]
    fn calibrated_to_fo1() {
        let m = model();
        assert!((m.nominal_delay(1.0, 1.0) - m.tech().tau_fo1_ps()).abs() < 1e-12);
    }

    #[test]
    fn delay_scales_with_load_and_inverse_drive() {
        let m = model();
        let d = m.nominal_delay(1.0, 1.0);
        assert!((m.nominal_delay(1.0, 3.0) - 3.0 * d).abs() < 1e-12);
        assert!((m.nominal_delay(4.0, 1.0) - d / 4.0).abs() < 1e-12);
    }

    #[test]
    fn linearization_matches_exact_to_first_order() {
        let m = model();
        for dvth in [-0.02, -0.01, 0.01, 0.02] {
            let exact = m.gate_delay(1.0, 1.0, dvth);
            let lin = m.linearized_delay(1.0, 1.0, dvth);
            // Second-order error: |exact - lin| = O(dvth^2).
            let rel = ((exact - lin) / exact).abs();
            assert!(rel < 0.01, "dvth={dvth}: rel error {rel}");
        }
    }

    #[test]
    fn higher_vth_slows_gate() {
        let m = model();
        assert!(m.gate_delay(1.0, 1.0, 0.05) > m.gate_delay(1.0, 1.0, 0.0));
        assert!(m.gate_delay(1.0, 1.0, -0.05) < m.gate_delay(1.0, 1.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "past the supply")]
    fn rejects_vth_beyond_supply() {
        let m = model();
        let _ = m.gate_delay(1.0, 1.0, 1.0);
    }
}
