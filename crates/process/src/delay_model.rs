//! Alpha-power-law gate delay model and its variation sensitivities.
//!
//! The Sakurai–Newton alpha-power law gives the drain current of a
//! velocity-saturated MOSFET as `I ∝ (W/L)(Vdd - Vth)^α`, hence a gate
//! delay of
//!
//! ```text
//! d = k · C_load · Vdd / ( x · (Vdd - Vth)^α )
//! ```
//!
//! where `x` is the drive-strength (size) factor. Linearizing around the
//! nominal threshold gives the fractional sensitivity
//! `∂d/∂Vth / d = α / (Vdd - Vth)`, the quantity that converts σVth into
//! σdelay throughout the workspace.

use serde::{Deserialize, Serialize};
use vardelay_stats::batch::{
    exp_approx, exp_approx_fma, exp_approx_fma_raw, ln_one_minus, ln_one_minus_ratio_fma_raw,
    LN_ONE_MINUS_MAX_R,
};

use crate::tech::Technology;

/// The **v2-kernel** alpha-power slowdown factor
/// `(od / (od - dvth))^alpha = exp(-alpha · ln(1 - dvth/od))`, evaluated
/// through the frozen polynomial kernels of `vardelay_stats::batch`
/// instead of `powf`.
///
/// This is the Monte-Carlo hot path's per-gate transcendental: under the
/// v1 kernel every gate of every trial pays one `powf`. The v2 contract
/// replaces it with one division plus two fixed polynomial chains
/// ([`ln_one_minus`] then [`exp_approx`]) whose coefficients are frozen
/// in source; the combined relative error stays below `2e-7` over the
/// certified `|dvth/od| <= 0.6` range — far inside which every paper
/// variation mix lives (6σ of total ΔVth against the 0.7 V BPTM-70nm
/// overdrive is `r ≈ 0.39`). Beyond the certified range the function
/// falls back to the exact `powf` form, so extreme custom technologies
/// stay correct; the fallback is itself a pure function, so determinism
/// is unaffected.
///
/// # Panics
///
/// Panics if `dvth >= od` (the gate would not switch) or `od <= 0`.
#[inline]
pub fn slowdown_factor_approx(od: f64, alpha: f64, dvth: f64) -> f64 {
    assert!(od > 0.0, "overdrive must be positive");
    assert!(dvth < od, "threshold shift {dvth} V reaches the supply");
    let r = dvth / od;
    if r.abs() > LN_ONE_MINUS_MAX_R {
        return (od / (od - dvth)).powf(alpha);
    }
    let x = -alpha * ln_one_minus(r);
    if x.abs() > vardelay_stats::batch::EXP_APPROX_MAX_X {
        return (od / (od - dvth)).powf(alpha);
    }
    exp_approx(x)
}

/// Bulk form of [`slowdown_factor_approx`]:
/// `out[i] = slowdown_factor_approx(od, alpha, shared + sigmas[i] * z[i])`,
/// bit-identical per element, but evaluated in branch-free
/// structure-of-arrays passes so the polynomial chains vectorize. The
/// domain checks are hoisted: a single range test per pass guards the
/// whole slice, and only when some element leaves the certified range
/// does the function fall back to the element-wise scalar form (whose
/// in-range elements produce the same bits, so the fallback never
/// changes in-range results).
///
/// This is the v2 kernel's per-gate hot loop: `z[i]` is gate `i`'s
/// standard normal, `sigmas[i]` its Pelgrom σVth, `shared` the die's
/// shared ΔVth.
///
/// # Panics
///
/// Panics if the slice lengths differ, `od <= 0`, or (in the fallback)
/// an element's total shift reaches the supply.
pub fn slowdown_factors_approx_into(
    od: f64,
    alpha: f64,
    shared: f64,
    sigmas: &[f64],
    z: &[f64],
    out: &mut [f64],
) {
    assert!(od > 0.0, "overdrive must be positive");
    assert!(
        sigmas.len() == z.len() && z.len() == out.len(),
        "slice length mismatch"
    );
    if fast_path_dispatch(od, alpha, shared, sigmas, z, out) {
        return;
    }
    // Some element left the certified range: `out` holds intermediate
    // values, so recompute everything element-wise from `z` (in-range
    // elements produce the same bits either way).
    for (o, (&sig, &zi)) in out.iter_mut().zip(sigmas.iter().zip(z)) {
        *o = slowdown_factor_approx(od, alpha, shared + sig * zi);
    }
}

/// Shift-major **fused** slowdown factors for the v3 wide kernel's
/// stage pass:
/// `out[i] = slowdown_factor_approx_fma(od, alpha, shift[i])`,
/// bit-identical per element. The caller has already combined each
/// lane's die-level ΔVth with its gate's Pelgrom term
/// (`shift = shared + sigma·z`), which lets one call cover a whole
/// stage's `gates × lanes` block instead of one call per gate. Unlike
/// the v2 pipeline, the polynomial chains here are the `_fma` variants
/// of the same frozen kernels — fused steps halve the latency-bound
/// Horner chains, and `mul_add` is correctly rounded on every target,
/// so the hoisted-range fast path and the element-wise scalar fallback
/// still produce identical bits for in-range elements (batch
/// granularity cannot reach the results).
///
/// # Panics
///
/// Panics if the slice lengths differ, `od <= 0`, or (in the fallback)
/// an element's shift reaches the supply.
pub fn slowdown_factors_shift_approx_into(od: f64, alpha: f64, shift: &[f64], out: &mut [f64]) {
    assert!(od > 0.0, "overdrive must be positive");
    assert!(shift.len() == out.len(), "slice length mismatch");
    if fast_path_shift_dispatch(od, alpha, shift, out) {
        return;
    }
    // Some element left the certified range: `out` holds intermediate
    // values, so recompute everything element-wise from `shift`
    // (in-range elements produce the same bits either way).
    for (o, &sh) in out.iter_mut().zip(shift) {
        *o = slowdown_factor_approx_fma(od, alpha, sh);
    }
}

/// Scalar form of the v3 shift pipeline: [`slowdown_factor_approx`] on
/// the fused polynomial kernels ([`ln_one_minus_fma`],
/// [`exp_approx_fma`]) — the element-wise reference (and out-of-range
/// fallback) of [`slowdown_factors_shift_approx_into`]. Beyond the
/// certified range it falls back to the same exact `powf` form as the
/// v1/v2 scalar.
///
/// # Panics
///
/// Panics if `dvth >= od` (the gate would not switch) or `od <= 0`.
#[inline]
pub fn slowdown_factor_approx_fma(od: f64, alpha: f64, dvth: f64) -> f64 {
    assert!(od > 0.0, "overdrive must be positive");
    assert!(dvth < od, "threshold shift {dvth} V reaches the supply");
    // Range test and series argument both avoid forming r = dvth/od:
    // the wide pipeline spends one division per element this way, and
    // the scalar reference must follow the identical schedule to stay
    // bit-interchangeable with it.
    if dvth.abs() > LN_ONE_MINUS_MAX_R * od {
        return (od / (od - dvth)).powf(alpha);
    }
    let x = -alpha * ln_one_minus_ratio_fma_raw(dvth, od);
    if x.abs() > vardelay_stats::batch::EXP_APPROX_MAX_X {
        return (od / (od - dvth)).powf(alpha);
    }
    exp_approx_fma(x)
}

/// The certified-range pipeline of
/// [`slowdown_factors_shift_approx_into`]: the same element-wise maps
/// as [`fast_path`] on the fused kernels, minus the shift construction
/// the caller already did — but as **one** sweep instead of five.
/// Each element runs the whole div → ln → exp chain speculatively
/// through the `_raw` (uncheck­ed) kernels while a branchless flag
/// accumulates both range tests; out-of-range elements produce junk
/// that the `false` return tells the caller to discard wholesale. One
/// load and one store per element instead of three of each plus two
/// scan passes, and the independent per-element chains give the
/// out-of-order core more to overlap than three short loops did.
/// In-range elements see the exact same operation sequence as the
/// scalar reference, so bits are unchanged.
#[inline(always)]
fn fast_path_shift(od: f64, alpha: f64, shift: &[f64], out: &mut [f64]) -> bool {
    #[inline(always)]
    fn one(od: f64, alpha: f64, sh: f64, o: &mut f64, ok: &mut bool) {
        *ok &= sh.abs() <= LN_ONE_MINUS_MAX_R * od;
        let x = -alpha * ln_one_minus_ratio_fma_raw(sh, od);
        *ok &= x.abs() <= vardelay_stats::batch::EXP_APPROX_MAX_X;
        *o = exp_approx_fma_raw(x);
    }
    // Walk the two halves of the slice in lock-step so every iteration
    // carries two independent div → ln → exp chains: the chains are
    // latency-bound, and pairing them roughly doubles what the
    // out-of-order core can overlap. Identical per-element operations,
    // so the bits match the straight-line walk exactly.
    let mut ok = true;
    let n = out.len();
    let half = n / 2;
    let (o_lo, o_hi) = out.split_at_mut(half);
    let (s_lo, s_hi) = shift.split_at(half);
    for ((ol, &sl), (oh, &sh2)) in o_lo.iter_mut().zip(s_lo).zip(o_hi.iter_mut().zip(s_hi)) {
        one(od, alpha, sl, ol, &mut ok);
        one(od, alpha, sh2, oh, &mut ok);
    }
    if n % 2 == 1 {
        one(od, alpha, s_hi[half], &mut o_hi[half], &mut ok);
    }
    ok
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx,fma")]
unsafe fn fast_path_shift_avx(od: f64, alpha: f64, shift: &[f64], out: &mut [f64]) -> bool {
    fast_path_shift(od, alpha, shift, out)
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn fast_path_shift_dispatch(od: f64, alpha: f64, shift: &[f64], out: &mut [f64]) -> bool {
    if std::arch::is_x86_feature_detected!("fma") && std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: both features were just detected at runtime.
        unsafe { fast_path_shift_avx(od, alpha, shift, out) }
    } else {
        fast_path_shift(od, alpha, shift, out)
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn fast_path_shift_dispatch(od: f64, alpha: f64, shift: &[f64], out: &mut [f64]) -> bool {
    fast_path_shift(od, alpha, shift, out)
}

/// The certified-range pipeline of [`slowdown_factors_approx_into`]:
/// reduction-free element-wise maps (so the polynomial chains
/// vectorize), each guarded by a separate range scan. Returns `false`
/// (with `out` holding intermediates) when any element leaves the
/// certified range. `inline(always)` so the AVX-multiversioned wrapper
/// below inherits the body; plain mul/add/div vectorization is
/// IEEE-exact per element (FMA is *not* enabled), so every dispatch
/// target produces identical bits.
#[inline(always)]
fn fast_path(od: f64, alpha: f64, shared: f64, sigmas: &[f64], z: &[f64], out: &mut [f64]) -> bool {
    for (o, (&sig, &zi)) in out.iter_mut().zip(sigmas.iter().zip(z)) {
        *o = (shared + sig * zi) / od;
    }
    if !within(out, LN_ONE_MINUS_MAX_R) {
        return false;
    }
    for o in out.iter_mut() {
        *o = -alpha * ln_one_minus(*o);
    }
    if !within(out, vardelay_stats::batch::EXP_APPROX_MAX_X) {
        return false;
    }
    for o in out.iter_mut() {
        *o = exp_approx(*o);
    }
    true
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn fast_path_avx(
    od: f64,
    alpha: f64,
    shared: f64,
    sigmas: &[f64],
    z: &[f64],
    out: &mut [f64],
) -> bool {
    fast_path(od, alpha, shared, sigmas, z, out)
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn fast_path_dispatch(
    od: f64,
    alpha: f64,
    shared: f64,
    sigmas: &[f64],
    z: &[f64],
    out: &mut [f64],
) -> bool {
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: the AVX feature was just detected at runtime.
        unsafe { fast_path_avx(od, alpha, shared, sigmas, z, out) }
    } else {
        fast_path(od, alpha, shared, sigmas, z, out)
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn fast_path_dispatch(
    od: f64,
    alpha: f64,
    shared: f64,
    sigmas: &[f64],
    z: &[f64],
    out: &mut [f64],
) -> bool {
    fast_path(od, alpha, shared, sigmas, z, out)
}

/// `true` when every element of `xs` satisfies `|x| <= limit`. Four
/// independent accumulators break the serial `max` dependency chain
/// (and vectorize); `max` is exact, so the fold order cannot change the
/// verdict.
#[inline(always)]
fn within(xs: &[f64], limit: f64) -> bool {
    let mut w = [0.0f64; 4];
    let mut chunks = xs.chunks_exact(4);
    for c in &mut chunks {
        w[0] = w[0].max(c[0].abs());
        w[1] = w[1].max(c[1].abs());
        w[2] = w[2].max(c[2].abs());
        w[3] = w[3].max(c[3].abs());
    }
    let mut worst = w[0].max(w[1]).max(w[2].max(w[3]));
    for &x in chunks.remainder() {
        worst = worst.max(x.abs());
    }
    worst <= limit
}

/// Alpha-power-law delay evaluator bound to a [`Technology`].
///
/// ```
/// use vardelay_process::{AlphaPowerDelay, Technology};
/// let m = AlphaPowerDelay::new(Technology::bptm70());
/// let d_nom = m.gate_delay(1.0, 1.0, 0.0);
/// // A +50 mV Vth shift slows the gate down.
/// assert!(m.gate_delay(1.0, 1.0, 0.050) > d_nom);
/// // Doubling drive at fixed load halves delay.
/// assert!((m.gate_delay(2.0, 1.0, 0.0) - d_nom / 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlphaPowerDelay {
    tech: Technology,
    /// Proportionality constant chosen so `gate_delay(1, 1, 0)` equals the
    /// technology's FO1 delay.
    k: f64,
}

impl AlphaPowerDelay {
    /// Binds the model to a technology, calibrating the constant so that a
    /// minimum inverter driving a unit load at nominal Vth has exactly the
    /// technology's FO1 delay.
    pub fn new(tech: Technology) -> Self {
        // d(1, 1, 0) = k * 1 * vdd / (vdd - vth0)^alpha  ==  tau_fo1
        let k = tech.tau_fo1_ps() * tech.overdrive().powf(tech.alpha()) / tech.vdd();
        AlphaPowerDelay { tech, k }
    }

    /// The bound technology.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// Gate delay (ps) at drive factor `x`, normalized load `c_load`
    /// (in units of a minimum inverter's input capacitance), and
    /// threshold shift `dvth` (V).
    ///
    /// # Panics
    ///
    /// Panics if `x <= 0`, `c_load < 0`, or the shifted threshold reaches
    /// the supply (the gate would not switch).
    pub fn gate_delay(&self, x: f64, c_load: f64, dvth: f64) -> f64 {
        assert!(x > 0.0, "drive factor must be positive");
        assert!(c_load >= 0.0, "load must be non-negative");
        let vth = self.tech.vth0() + dvth;
        let od = self.tech.vdd() - vth;
        assert!(
            od > 0.0,
            "threshold shift {dvth} V pushes Vth past the supply"
        );
        self.k * c_load * self.tech.vdd() / (x * od.powf(self.tech.alpha()))
    }

    /// Nominal gate delay (ps) — no threshold shift.
    #[inline]
    pub fn nominal_delay(&self, x: f64, c_load: f64) -> f64 {
        self.gate_delay(x, c_load, 0.0)
    }

    /// First-order (linearized) delay under a threshold shift:
    /// `d ≈ d_nom · (1 + s · dvth)` with `s = α/(Vdd − Vth0)`.
    ///
    /// This is the model the SSTA engine uses; [`Self::gate_delay`] is the
    /// "exact" nonlinear evaluation the Monte-Carlo engine uses, so the two
    /// engines diverge exactly where the paper's Gaussian assumption does.
    #[inline]
    pub fn linearized_delay(&self, x: f64, c_load: f64, dvth: f64) -> f64 {
        self.nominal_delay(x, c_load) * (1.0 + self.tech.delay_vth_sensitivity() * dvth)
    }

    /// Absolute delay sensitivity `∂d/∂Vth` (ps per volt) at nominal.
    #[inline]
    pub fn delay_sensitivity_abs(&self, x: f64, c_load: f64) -> f64 {
        self.nominal_delay(x, c_load) * self.tech.delay_vth_sensitivity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AlphaPowerDelay {
        AlphaPowerDelay::new(Technology::bptm70())
    }

    #[test]
    fn calibrated_to_fo1() {
        let m = model();
        assert!((m.nominal_delay(1.0, 1.0) - m.tech().tau_fo1_ps()).abs() < 1e-12);
    }

    #[test]
    fn delay_scales_with_load_and_inverse_drive() {
        let m = model();
        let d = m.nominal_delay(1.0, 1.0);
        assert!((m.nominal_delay(1.0, 3.0) - 3.0 * d).abs() < 1e-12);
        assert!((m.nominal_delay(4.0, 1.0) - d / 4.0).abs() < 1e-12);
    }

    #[test]
    fn linearization_matches_exact_to_first_order() {
        let m = model();
        for dvth in [-0.02, -0.01, 0.01, 0.02] {
            let exact = m.gate_delay(1.0, 1.0, dvth);
            let lin = m.linearized_delay(1.0, 1.0, dvth);
            // Second-order error: |exact - lin| = O(dvth^2).
            let rel = ((exact - lin) / exact).abs();
            assert!(rel < 0.01, "dvth={dvth}: rel error {rel}");
        }
    }

    #[test]
    fn higher_vth_slows_gate() {
        let m = model();
        assert!(m.gate_delay(1.0, 1.0, 0.05) > m.gate_delay(1.0, 1.0, 0.0));
        assert!(m.gate_delay(1.0, 1.0, -0.05) < m.gate_delay(1.0, 1.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "past the supply")]
    fn rejects_vth_beyond_supply() {
        let m = model();
        let _ = m.gate_delay(1.0, 1.0, 1.0);
    }

    #[test]
    fn slowdown_approx_pinned_over_reachable_overdrive_range() {
        // The v2 kernel's per-gate transcendental must stay within 2e-7
        // relative error everywhere a paper variation mix can reach. The
        // largest mix (20/35/15 mV inter/random/systematic) has total
        // sigma ~43 mV; +/-6 sigma is ~0.26 V of ΔVth against the 0.7 V
        // BPTM-70nm overdrive (r ~ 0.37). We sweep half again past that
        // (|dvth| <= 0.40 V, r <= 0.58) over the workspace's alpha range.
        let od = Technology::bptm70().overdrive();
        let mut max_rel: f64 = 0.0;
        for alpha in [1.0, 1.25, 1.3, 1.4, 2.0] {
            let mut dvth = -0.40;
            while dvth <= 0.40 {
                let exact = (od / (od - dvth)).powf(alpha);
                let approx = slowdown_factor_approx(od, alpha, dvth);
                max_rel = max_rel.max(((approx - exact) / exact).abs());
                dvth += 1e-4;
            }
        }
        assert!(max_rel < 2e-7, "max rel error {max_rel:.3e}");
    }

    #[test]
    fn slowdown_approx_falls_back_to_exact_outside_certified_range() {
        // Beyond |r| = 0.6 (or when alpha·|ln(1-r)| leaves the exp_approx
        // domain) the function must return powf's bits exactly.
        let od = Technology::bptm70().overdrive();
        for (alpha, dvth) in [(1.3, 0.45), (1.3, -0.45), (5.0, 0.35), (10.0, -0.30)] {
            let exact = (od / (od - dvth)).powf(alpha);
            assert_eq!(slowdown_factor_approx(od, alpha, dvth), exact);
        }
    }

    #[test]
    #[should_panic(expected = "reaches the supply")]
    fn slowdown_approx_rejects_shift_at_supply() {
        let _ = slowdown_factor_approx(0.7, 1.3, 0.7);
    }

    #[test]
    fn bulk_slowdown_matches_scalar_bit_for_bit() {
        let (od, alpha, shared) = (0.7, 1.3, 0.013);
        let sigmas: Vec<f64> = (0..117).map(|i| 0.001 + 1e-5 * i as f64).collect();
        let z: Vec<f64> = (0..117).map(|i| (i as f64 - 58.0) / 12.0).collect();
        let mut out = vec![0.0; 117];
        slowdown_factors_approx_into(od, alpha, shared, &sigmas, &z, &mut out);
        for (i, &got) in out.iter().enumerate() {
            let want = slowdown_factor_approx(od, alpha, shared + sigmas[i] * z[i]);
            assert_eq!(got, want, "element {i}");
        }

        // One element past the certified range forces the fallback pass;
        // in-range elements must keep the exact same bits.
        let mut z_wild = z.clone();
        z_wild[40] = 300.0; // r ≈ 0.06 → fine; sig*300 ≈ 0.42+ → |r| > 0.6
        let mut out_wild = vec![0.0; 117];
        slowdown_factors_approx_into(od, alpha, shared, &sigmas, &z_wild, &mut out_wild);
        for (i, &got) in out_wild.iter().enumerate() {
            let want = slowdown_factor_approx(od, alpha, shared + sigmas[i] * z_wild[i]);
            assert_eq!(got, want, "fallback element {i}");
        }
    }

    #[test]
    fn shift_slowdown_matches_fma_scalar_bit_for_bit() {
        // The v3 shift form must reproduce its fused scalar reference
        // exactly, including through the fallback.
        let (od, alpha) = (0.7, 1.3);
        let shift: Vec<f64> = (0..48).map(|i| -0.25 + 0.01 * i as f64).collect();
        let mut out = vec![0.0; 48];
        slowdown_factors_shift_approx_into(od, alpha, &shift, &mut out);
        for (i, &got) in out.iter().enumerate() {
            let want = slowdown_factor_approx_fma(od, alpha, shift[i]);
            assert_eq!(got, want, "element {i}");
        }

        // Ragged width (partial final pass) and fallback: one wild
        // element forces the scalar path, in-range elements keep their
        // bits.
        let mut sh_wild = shift[..11].to_vec();
        sh_wild[4] = 0.55; // |r| > 0.6 against od = 0.7
        let mut out_wild = vec![0.0; 11];
        slowdown_factors_shift_approx_into(od, alpha, &sh_wild, &mut out_wild);
        for (i, &got) in out_wild.iter().enumerate() {
            let want = slowdown_factor_approx_fma(od, alpha, sh_wild[i]);
            assert_eq!(got, want, "fallback element {i}");
        }
        assert_eq!(out_wild[2], out[2], "element bits are width-independent");
    }

    #[test]
    fn fma_scalar_slowdown_agrees_with_v2_scalar() {
        // Same frozen coefficients, fused rounding schedule: the v3
        // scalar must track the v2 scalar far below any physical
        // tolerance across the certified range (and match exactly in the
        // shared powf fallback).
        let (od, alpha) = (0.7, 1.3);
        let mut dvth = -0.4;
        while dvth < 0.4 {
            let fused = slowdown_factor_approx_fma(od, alpha, dvth);
            let plain = slowdown_factor_approx(od, alpha, dvth);
            assert!(
                ((fused - plain) / plain).abs() < 1e-12,
                "dvth={dvth}: {fused} vs {plain}"
            );
            dvth += 1e-3;
        }
        assert_eq!(
            slowdown_factor_approx_fma(od, alpha, 0.45),
            slowdown_factor_approx(od, alpha, 0.45),
            "out-of-range fallback is the shared exact powf"
        );
    }
}
