//! Pelgrom-law scaling of random threshold-voltage mismatch with device
//! size.
//!
//! Pelgrom's law: `σVth ∝ 1 / sqrt(W · L)`. In this workspace gate sizes are
//! expressed as a unitless factor `x` multiplying the minimum device width
//! (length fixed at minimum), so the random σVth of a gate sized `x` is
//! `σVth(x) = σVth_min / sqrt(x)`.
//!
//! This is the physical mechanism behind the sizing algorithm's leverage:
//! upsizing a gate both speeds it up (more drive) and makes it *less
//! variable*, at an area cost.

/// Random σVth (V) of a device sized `x` times minimum width.
///
/// # Panics
///
/// Panics unless `x > 0`.
///
/// ```
/// use vardelay_process::pelgrom_sigma;
/// let s1 = pelgrom_sigma(0.035, 1.0);
/// let s4 = pelgrom_sigma(0.035, 4.0);
/// assert!((s4 - s1 / 2.0).abs() < 1e-12);
/// ```
#[inline]
pub fn pelgrom_sigma(sigma_min_v: f64, x: f64) -> f64 {
    assert!(x > 0.0, "size factor must be positive, got {x}");
    sigma_min_v / x.sqrt()
}

/// Inverse problem: the size factor needed to reach a target random σVth.
///
/// # Panics
///
/// Panics unless both sigmas are positive.
#[inline]
pub fn size_for_sigma(sigma_min_v: f64, target_sigma_v: f64) -> f64 {
    assert!(
        sigma_min_v > 0.0 && target_sigma_v > 0.0,
        "sigmas must be positive"
    );
    (sigma_min_v / target_sigma_v).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_roundtrip() {
        let x = size_for_sigma(0.035, pelgrom_sigma(0.035, 2.7));
        assert!((x - 2.7).abs() < 1e-12);
    }

    #[test]
    fn monotone_decreasing_in_size() {
        let mut prev = f64::INFINITY;
        for i in 1..=10 {
            let s = pelgrom_sigma(0.05, f64::from(i));
            assert!(s < prev);
            prev = s;
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_size() {
        let _ = pelgrom_sigma(0.035, 0.0);
    }
}
