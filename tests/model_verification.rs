//! Integration tests spanning crates: the §2.4 model-verification loop
//! (SSTA stage moments + Clark model vs full Monte-Carlo).

use vardelay::circuit::{CellLibrary, LatchParams, StagedPipeline};
use vardelay::core::{Pipeline, StageDelay};
use vardelay::mc::{McConfig, PipelineMc};
use vardelay::process::VariationConfig;
use vardelay::ssta::SstaEngine;

fn analytic_pipeline(var: VariationConfig, pipe: &StagedPipeline) -> Pipeline {
    let timing = SstaEngine::new(CellLibrary::default(), var, None).analyze_pipeline(pipe);
    let stages: Vec<StageDelay> = timing
        .stage_delays
        .iter()
        .map(|n| StageDelay::from_normal(*n))
        .collect();
    Pipeline::new(stages, timing.correlation).expect("consistent dims")
}

fn run_case(var: VariationConfig, ns: usize, nl: usize, seed: u64) {
    let pipe = StagedPipeline::inverter_grid(ns, nl, 1.0, LatchParams::tg_msff_70nm());
    let model = analytic_pipeline(var, &pipe).delay_distribution();
    let mc = PipelineMc::new(CellLibrary::default(), var, None)
        .run(&pipe, &McConfig::quick(15_000, seed));
    let mean_err = (model.mean() - mc.pipeline.mean()).abs() / mc.pipeline.mean();
    let sd_err = (model.sd() - mc.pipeline.sd()).abs() / mc.pipeline.sd();
    assert!(
        mean_err < 0.01,
        "{ns}x{nl}: mean error {:.3}% too large (model {} vs MC {})",
        100.0 * mean_err,
        model.mean(),
        mc.pipeline.mean()
    );
    assert!(
        sd_err < 0.25,
        "{ns}x{nl}: sd error {:.1}% too large (model {} vs MC {})",
        100.0 * sd_err,
        model.sd(),
        mc.pipeline.sd()
    );
}

#[test]
fn model_tracks_mc_random_intra() {
    run_case(VariationConfig::random_only(35.0), 5, 8, 11);
}

#[test]
fn model_tracks_mc_inter_only() {
    run_case(VariationConfig::inter_only(40.0), 5, 8, 12);
}

#[test]
fn model_tracks_mc_combined() {
    run_case(VariationConfig::combined(20.0, 35.0, 15.0), 5, 8, 13);
}

#[test]
fn model_tracks_mc_wide_shallow() {
    run_case(VariationConfig::random_only(35.0), 8, 5, 14);
}

#[test]
fn yield_model_tracks_mc_across_targets() {
    let var = VariationConfig::combined(20.0, 35.0, 15.0);
    let pipe = StagedPipeline::inverter_grid(5, 8, 1.0, LatchParams::tg_msff_70nm());
    let model = analytic_pipeline(var, &pipe);
    let mc =
        PipelineMc::new(CellLibrary::default(), var, None).run(&pipe, &McConfig::quick(20_000, 15));
    let d = model.delay_distribution();
    for q in [0.25, 0.5, 0.75, 0.9] {
        let t = d.quantile(q);
        let y_model = model.yield_at(t);
        let y_mc = mc.pipeline.yield_at(t).value;
        assert!(
            (y_model - y_mc).abs() < 0.06,
            "q={q}: model {y_model} vs mc {y_mc}"
        );
    }
}

#[test]
fn inter_die_dominance_correlates_stages() {
    // Correlation matrix from SSTA should reflect the variation mix.
    let pipe = StagedPipeline::inverter_grid(4, 8, 1.0, LatchParams::ideal());
    let lib = CellLibrary::default;
    let rho_of = |var: VariationConfig| {
        SstaEngine::new(lib(), var, None)
            .analyze_pipeline(&pipe)
            .correlation
            .get(0, 1)
    };
    let rho_rand = rho_of(VariationConfig::random_only(35.0));
    let rho_mix = rho_of(VariationConfig::combined(20.0, 35.0, 0.0));
    let rho_inter = rho_of(VariationConfig::inter_only(40.0));
    assert!(rho_rand < 1e-9);
    assert!(rho_mix > 0.3 && rho_mix < 0.999, "rho_mix = {rho_mix}");
    assert!((rho_inter - 1.0).abs() < 1e-9);
}
