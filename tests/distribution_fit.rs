//! Distribution-level goodness-of-fit: the analytical pipeline-delay
//! Gaussian vs the full Monte-Carlo sample (the strongest form of the
//! paper's Fig. 2 comparison — not just moments, but the whole CDF).

use vardelay::circuit::{CellLibrary, LatchParams, StagedPipeline};
use vardelay::core::{Pipeline, StageDelay};
use vardelay::mc::{McConfig, PipelineMc};
use vardelay::process::VariationConfig;
use vardelay::ssta::SstaEngine;
use vardelay::stats::ks::ks_against_normal;

fn model_and_samples(
    var: VariationConfig,
    ns: usize,
    nl: usize,
) -> (vardelay::stats::Normal, Vec<f64>) {
    let pipe = StagedPipeline::inverter_grid(ns, nl, 1.0, LatchParams::tg_msff_70nm());
    let timing = SstaEngine::new(CellLibrary::default(), var, None).analyze_pipeline(&pipe);
    let stages: Vec<StageDelay> = timing
        .stage_delays
        .iter()
        .map(|n| StageDelay::from_normal(*n))
        .collect();
    let model = Pipeline::new(stages, timing.correlation)
        .expect("dims")
        .delay_distribution();
    let mc =
        PipelineMc::new(CellLibrary::default(), var, None).run(&pipe, &McConfig::quick(12_000, 99));
    (model, mc.pipeline.samples().to_vec())
}

#[test]
fn inter_die_distribution_fits_tightly() {
    // Perfectly correlated stages: the max is exactly Gaussian, so the KS
    // distance should be small (MC noise + nonlinearity only).
    let (model, samples) = model_and_samples(VariationConfig::inter_only(40.0), 5, 8);
    let d = ks_against_normal(&samples, &model);
    assert!(d < 0.03, "KS distance {d} too large for the exact case");
}

#[test]
fn independent_stage_distribution_fits_within_clark_error() {
    // Independent stages: the exact max is right-skewed; Clark's Gaussian
    // still fits the body within a modest KS distance.
    let (model, samples) = model_and_samples(VariationConfig::random_only(35.0), 5, 8);
    let d = ks_against_normal(&samples, &model);
    assert!(d < 0.12, "KS distance {d} beyond Clark's expected error");
    // And the skew is in the expected direction (right tail heavier).
    let stats: vardelay::stats::RunningStats = samples.iter().copied().collect();
    assert!(
        stats.skewness() > 0.0,
        "max of independent stages should be right-skewed, got {}",
        stats.skewness()
    );
}

#[test]
fn combined_distribution_fits() {
    let (model, samples) = model_and_samples(VariationConfig::combined(20.0, 35.0, 15.0), 5, 8);
    let d = ks_against_normal(&samples, &model);
    assert!(d < 0.09, "KS distance {d}");
}
