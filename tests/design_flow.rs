//! Integration tests for the design-side flows: variability trends,
//! imbalance, and the global sizing loop (paper §3–§4 end to end).

use vardelay::circuit::generators::{random_logic, RandomLogicConfig};
use vardelay::circuit::{CellLibrary, LatchParams, StagedPipeline};
use vardelay::core::balance::{balanced_pipeline, best_point, imbalance_sweep};
use vardelay::core::yield_model::stage_yield_target;
use vardelay::opt::sizing::{SizingConfig, StatisticalSizer};
use vardelay::opt::{GlobalPipelineOptimizer, OptimizationGoal};
use vardelay::process::VariationConfig;
use vardelay::ssta::SstaEngine;
use vardelay::stats::inv_cap_phi;

fn engine(var: VariationConfig) -> SstaEngine {
    SstaEngine::new(CellLibrary::default(), var, None)
}

#[test]
fn fig5c_tradeoff_direction_flips_with_inter_die_strength() {
    // NL x NS = 120: variability rises with stage count under intra-only
    // variation and falls under inter-die-dominated variation.
    let variability = |var: VariationConfig, ns: usize| {
        let pipe = StagedPipeline::inverter_grid(ns, 120 / ns, 1.0, LatchParams::ideal());
        let timing = engine(var).analyze_pipeline(&pipe);
        let stages: Vec<vardelay::core::StageDelay> = timing
            .stage_delays
            .iter()
            .map(|n| vardelay::core::StageDelay::from_normal(*n))
            .collect();
        vardelay::core::Pipeline::new(stages, timing.correlation)
            .expect("dims")
            .delay_distribution()
            .variability()
    };
    let intra = VariationConfig::random_only(35.0);
    assert!(
        variability(intra, 30) > variability(intra, 2),
        "intra-only: more stages must increase variability"
    );
    let inter = VariationConfig::combined(40.0, 35.0, 0.0);
    assert!(
        variability(inter, 30) < variability(inter, 2),
        "inter-dominated: more stages must decrease variability"
    );
}

#[test]
fn imbalance_improves_yield_at_constant_area() {
    let target = 179.0;
    let sigma = 2.0;
    let y_stage = stage_yield_target(0.80, 3);
    let mu = target - inv_cap_phi(y_stage) * sigma;
    let balanced = balanced_pipeline(3, mu, sigma).expect("valid");
    let deltas: Vec<f64> = (0..60).map(|i| f64::from(i) * 0.05).collect();
    let sweep = imbalance_sweep(&balanced, &[0, 2], 1, &[1.8, 0.5, 1.8], target, &deltas)
        .expect("valid sweep");
    let best = best_point(&sweep);
    assert!(best.delta_ps > 0.0, "optimum must be off-balance");
    assert!(
        best.yield_value > balanced.yield_at(target) + 0.01,
        "imbalance gain: {} vs {}",
        best.yield_value,
        balanced.yield_at(target)
    );
}

#[test]
fn global_flow_meets_yield_where_individual_flow_fails() {
    // Miniature Table II: target placed at the slow stage's frontier.
    let mk = |name: &str, gates: usize, depth: usize, seed: u64| {
        random_logic(&RandomLogicConfig {
            name: name.into(),
            inputs: 10,
            gates,
            depth,
            outputs: 5,
            seed,
        })
    };
    let pipeline = StagedPipeline::new(
        "mini",
        vec![
            mk("big", 150, 14, 5),
            mk("mid", 80, 10, 6),
            mk("small", 40, 8, 7),
        ],
        LatchParams::tg_msff_70nm(),
    );
    let eng = engine(VariationConfig::random_only(35.0));
    let sizer = StatisticalSizer::new(eng.clone(), SizingConfig::default());
    let opt = GlobalPipelineOptimizer::new(sizer).with_rounds(4);

    // Probe the slow stage's frontier through an individual pass.
    let t0 = eng.analyze_pipeline(&pipeline);
    let slowest = t0.stage_delays.iter().map(|d| d.mean()).fold(0.0, f64::max);
    let indiv1 = opt.optimize_individually(&pipeline, slowest * 0.7, 0.80);
    let t1 = eng.analyze_pipeline(&indiv1);
    let slow_idx = 0usize;
    let target =
        t1.stage_delays[slow_idx].mean() + inv_cap_phi(0.88) * t1.stage_delays[slow_idx].sd();

    let indiv = opt.optimize_individually(&indiv1, target, 0.80);
    let (_, report) = opt.optimize(&indiv, target, 0.80, OptimizationGoal::EnsureYield);
    // Contract: reach the yield target (possibly trading away surplus
    // margin); if the target is infeasible, never end below the baseline.
    assert!(
        report.pipeline_yield_after >= 0.80
            || report.pipeline_yield_after >= report.pipeline_yield_before - 1e-9,
        "global flow should reach the target or keep the baseline: {} -> {}",
        report.pipeline_yield_before,
        report.pipeline_yield_after
    );
}

#[test]
fn minimize_area_recovers_area_at_target_yield() {
    let mk = |name: &str, gates: usize, depth: usize, seed: u64| {
        random_logic(&RandomLogicConfig {
            name: name.into(),
            inputs: 10,
            gates,
            depth,
            outputs: 5,
            seed,
        })
    };
    let pipeline = StagedPipeline::new(
        "mini3",
        vec![mk("a", 120, 12, 8), mk("b", 70, 10, 9), mk("c", 40, 8, 10)],
        LatchParams::tg_msff_70nm(),
    );
    let eng = engine(VariationConfig::random_only(35.0));
    let sizer = StatisticalSizer::new(eng.clone(), SizingConfig::default());
    let opt = GlobalPipelineOptimizer::new(sizer).with_rounds(4);

    // Comfortable target: everything meets it with slack.
    let t0 = eng.analyze_pipeline(&pipeline);
    let target = t0.stage_delays.iter().map(|d| d.mean()).fold(0.0, f64::max) * 1.1;
    let indiv = opt.optimize_individually(&pipeline, target, 0.80);
    let (optimized, report) = opt.optimize(&indiv, target, 0.80, OptimizationGoal::MinimizeArea);
    assert!(
        report.pipeline_yield_after >= 0.80,
        "yield {}",
        report.pipeline_yield_after
    );
    assert!(
        optimized.total_area() <= indiv.total_area() * 1.001,
        "area must not grow: {} vs {}",
        optimized.total_area(),
        indiv.total_area()
    );
}
