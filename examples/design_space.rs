//! Exploring the (μ, σ) design space of a pipeline stage (§2.5, Fig. 4).
//!
//! Given a target delay and yield, which stage delay distributions are
//! even admissible — and which are realizable with an inverter chain?
//!
//! Run: `cargo run --release --example design_space`

use vardelay::core::design_space::{DesignSpace, RealizableCurve, RealizableRegion};
use vardelay::core::yield_model::stage_yield_target;

fn main() {
    let target = 200.0; // ps
    let pipeline_yield = 0.85;
    let ds = DesignSpace::new(target, pipeline_yield).expect("valid yield");

    println!(
        "target {target} ps at pipeline yield {:.0}%\n",
        pipeline_yield * 100.0
    );

    // How the per-stage budget tightens with pipeline depth (eq. 12).
    println!("per-stage yield allocation Y^(1/Ns):");
    for ns in [2usize, 4, 8, 16] {
        println!(
            "  Ns = {ns:2}: stage yield {:.3}%, sigma budget at mu=180: {:.2} ps",
            100.0 * stage_yield_target(pipeline_yield, ns),
            ds.equality_sigma_bound(180.0, ns)
        );
    }

    // The realizable band for inverter-chain stages: min-size devices are
    // slower and noisier per gate than 4x devices.
    let region = RealizableRegion {
        min_size: RealizableCurve::new(16.0, 1.0),
        max_size: RealizableCurve::new(13.0, 0.35),
        min_depth: 4,
    };
    println!("\nrealizable sigma band along mu (inverter chains, eq. 13):");
    for (mu, lo, hi) in region.sample_band(60.0, 195.0, 6) {
        println!("  mu = {mu:6.1} ps: sigma in [{lo:.2}, {hi:.2}] ps");
    }

    // Intersect: which (mu, sigma) points are both realizable and
    // admissible for an 8-stage pipeline?
    println!("\nfeasible design points for Ns = 8:");
    for mu in [120.0, 150.0, 180.0, 195.0] {
        let sigma = region.min_size.sigma_at(mu); // worst realizable sigma
        let ok = ds.is_admissible(mu, sigma, 8) && region.contains(mu, sigma);
        println!(
            "  (mu {mu:6.1}, sigma {sigma:4.2}): {}",
            if ok { "feasible" } else { "infeasible" }
        );
    }
}
