//! How deep should you pipeline under process variation? (§3.1, Fig. 5c)
//!
//! For a fixed total logic depth, more pipeline stages mean a faster clock
//! — but under random intra-die variation, shallower stages are noisier
//! and the pipeline-delay variability *rises*, costing yield. The optimum
//! depends on the inter-die/intra-die mix.
//!
//! Run: `cargo run --release --example depth_tradeoff`

use vardelay::core::variability::{depth_stage_tradeoff, optimal_stage_count};

fn main() {
    let total = 120; // total logic depth to distribute
    let gate_mu = 10.0; // ps per gate

    println!("pipelining {total} levels of logic (gate delay {gate_mu} ps)\n");

    for (label, f_shared, f_rand) in [
        ("random intra-die only", 0.00, 0.06),
        ("balanced mix", 0.04, 0.06),
        ("inter-die dominated", 0.10, 0.02),
    ] {
        println!("--- {label} (f_shared = {f_shared}, f_rand = {f_rand}) ---");
        let sweep = depth_stage_tradeoff(total, gate_mu, f_shared, f_rand);
        for p in sweep.iter().filter(|p| [1, 4, 10, 30, 120].contains(&p.ns)) {
            println!(
                "  {:3} stages x depth {:3}: clock {:7.1} ps, sigma/mu = {:.4}, rho = {:.2}",
                p.ns,
                p.nl,
                p.stage.mean(),
                p.variability,
                p.rho
            );
        }
        let best = optimal_stage_count(total, gate_mu, f_shared, f_rand);
        println!(
            "  variability-optimal: {} stages (sigma/mu = {:.4})\n",
            best.ns, best.variability
        );
    }

    println!("takeaway (the paper's §3.1): with intra-die-dominated variation, deep");
    println!("pipelining raises variability — the traditional 'more stages = faster'");
    println!("rule must be weighed against yield; with inter-die-dominated variation");
    println!("the traditional rule survives.");
}
