//! Balanced vs unbalanced pipeline design (§3.2 of the paper).
//!
//! Demonstrates the paper's counter-intuitive result: a perfectly balanced
//! pipeline is *not* yield-optimal under process variation. Shifting delay
//! budget from stages where area buys little speed to the stage where it
//! buys a lot improves yield at constant area.
//!
//! Run: `cargo run --release --example pipeline_yield`

use vardelay::core::balance::{balanced_pipeline, best_point, classify_stage, imbalance_sweep};
use vardelay::core::yield_model::stage_yield_target;
use vardelay::stats::inv_cap_phi;

fn main() {
    // Three stages, 80% pipeline yield target at 179 ps (the paper's
    // ALU-Decoder experiment).
    let target = 179.0;
    let y_target = 0.80;
    let sigma = 2.0;

    // Balanced reference: each stage at the eq.-12 allocation Y^(1/3).
    let y_stage = stage_yield_target(y_target, 3);
    let mu = target - inv_cap_phi(y_stage) * sigma;
    let balanced = balanced_pipeline(3, mu, sigma).expect("valid moments");
    println!(
        "balanced design: 3 stages of N({mu:.1}, {sigma}²), per-stage yield {:.2}%",
        100.0 * y_stage
    );
    println!(
        "pipeline yield: {:.2}% (target {:.0}%)\n",
        100.0 * balanced.yield_at(target),
        100.0 * y_target
    );

    // Area-delay slopes (eq. 14): outer stages sell delay dearly (R > 1),
    // the middle stage buys it cheaply (R < 1).
    let slopes = [1.8, 0.5, 1.8];
    for (i, &r) in slopes.iter().enumerate() {
        println!("stage {i}: R = {r} -> {:?}", classify_stage(r));
    }

    // Area-neutral imbalance sweep: slow the donors, speed the receiver.
    let deltas: Vec<f64> = (0..80).map(|i| f64::from(i) * 0.05).collect();
    let sweep =
        imbalance_sweep(&balanced, &[0, 2], 1, &slopes, target, &deltas).expect("valid sweep");
    let best = best_point(&sweep);
    println!(
        "\nbest imbalance: slow stages 0,2 by {:.2} ps each -> yield {:.2}% ({:+.2} points)",
        best.delta_ps,
        100.0 * best.yield_value,
        100.0 * (best.yield_value - balanced.yield_at(target))
    );

    // Show the diminishing-returns tail (Fig. 7(b) "worst case").
    let last = sweep.last().expect("non-empty sweep");
    println!(
        "excessive imbalance ({:.1} ps): yield collapses to {:.2}%",
        last.delta_ps,
        100.0 * last.yield_value
    );

    println!("\nsweep (delta, yield%):");
    for p in sweep.iter().step_by(8) {
        println!("  {:5.2} ps  {:6.2}%", p.delta_ps, 100.0 * p.yield_value);
    }
}
