//! Quickstart: estimate the delay distribution and yield of a pipeline.
//!
//! Builds a 5-stage inverter-chain pipeline in the BPTM-70nm-like
//! technology, runs statistical timing, and compares the analytical yield
//! model against a Monte-Carlo reference.
//!
//! Run: `cargo run --release --example quickstart`

use vardelay::circuit::{CellLibrary, LatchParams, StagedPipeline};
use vardelay::core::{Pipeline, StageDelay};
use vardelay::mc::{McConfig, PipelineMc};
use vardelay::process::VariationConfig;
use vardelay::ssta::SstaEngine;

fn main() {
    // 1. A pipeline: 5 stages of 8 inverters each, with TG-MSFF latches.
    let pipeline = StagedPipeline::inverter_grid(5, 8, 1.0, LatchParams::tg_msff_70nm());

    // 2. A variation model: inter-die + random intra-die + systematic.
    let variation = VariationConfig::combined(20.0, 35.0, 15.0);

    // 3. Statistical timing -> per-stage distributions + correlations.
    let engine = SstaEngine::new(CellLibrary::default(), variation, None);
    let timing = engine.analyze_pipeline(&pipeline);
    println!("per-stage delay distributions:");
    for (i, d) in timing.stage_delays.iter().enumerate() {
        println!(
            "  stage {i}: mu = {:7.2} ps, sigma = {:5.2} ps (sigma/mu = {:.3}%)",
            d.mean(),
            d.sd(),
            100.0 * d.variability()
        );
    }
    println!(
        "stage correlation (0,1): {:.3}\n",
        timing.correlation.get(0, 1)
    );

    // 4. The paper's pipeline model: T_P = max_i SD_i via Clark.
    let stages: Vec<StageDelay> = timing
        .stage_delays
        .iter()
        .map(|n| StageDelay::from_normal(*n))
        .collect();
    let model = Pipeline::new(stages, timing.correlation.clone()).expect("consistent dims");
    let t_p = model.delay_distribution();
    println!(
        "pipeline delay: mu = {:.2} ps, sigma = {:.2} ps (Jensen bound: >= {:.2} ps)",
        t_p.mean(),
        t_p.sd(),
        model.jensen_lower_bound()
    );

    // 5. Yield at a target, analytically and by Monte-Carlo.
    let target = t_p.quantile(0.9).round();
    let analytic_yield = model.yield_at(target);
    let mc = PipelineMc::new(CellLibrary::default(), variation, None)
        .run(&pipeline, &McConfig::standard(42));
    let mc_yield = mc.pipeline.yield_at(target);
    println!("\nyield at {target:.0} ps:");
    println!("  analytical (eq. 9): {:.2}%", 100.0 * analytic_yield);
    println!(
        "  Monte-Carlo:        {:.2}%  (95% CI {:.2}..{:.2})",
        100.0 * mc_yield.value,
        100.0 * mc_yield.lo,
        100.0 * mc_yield.hi
    );
}
