//! Yield-constrained pipeline sizing with the Fig. 9 global flow.
//!
//! Builds a 4-stage pipeline from synthetic benchmark circuits, sizes it
//! conventionally (each stage alone), then runs the paper's global
//! optimizer and reports the area/yield comparison — the Tables II/III
//! experiment at example scale.
//!
//! Run: `cargo run --release --example optimize_area`

use vardelay::circuit::generators::{random_logic, RandomLogicConfig};
use vardelay::circuit::{CellLibrary, LatchParams, StagedPipeline};
use vardelay::opt::sizing::{SizingConfig, StatisticalSizer};
use vardelay::opt::{GlobalPipelineOptimizer, OptimizationGoal};
use vardelay::process::VariationConfig;
use vardelay::ssta::SstaEngine;

fn main() {
    // A small 4-stage pipeline (fast enough for an example; the bench
    // harness runs the full ISCAS-sized version).
    let mk = |name: &str, gates: usize, depth: usize, seed: u64| {
        random_logic(&RandomLogicConfig {
            name: name.into(),
            inputs: 16,
            gates,
            depth,
            outputs: 8,
            seed,
        })
    };
    let pipeline = StagedPipeline::new(
        "example4",
        vec![
            mk("stage_a", 220, 14, 1),
            mk("stage_b", 150, 12, 2),
            mk("stage_c", 100, 10, 3),
            mk("stage_d", 60, 9, 4),
        ],
        LatchParams::tg_msff_70nm(),
    );

    let engine = SstaEngine::new(
        CellLibrary::default(),
        VariationConfig::random_only(35.0),
        None,
    );
    let sizer = StatisticalSizer::new(engine.clone(), SizingConfig::default());
    let opt = GlobalPipelineOptimizer::new(sizer).with_rounds(3);

    // Target: the slowest stage's min-size mean (so sizing has real work).
    let t0 = engine.analyze_pipeline(&pipeline);
    let target = t0.stage_delays.iter().map(|d| d.mean()).fold(0.0, f64::max);
    let yield_target = 0.80;
    println!(
        "target delay {target:.0} ps, pipeline yield target {:.0}%\n",
        yield_target * 100.0
    );

    // Conventional flow.
    let indiv = opt.optimize_individually(&pipeline, target, yield_target);
    println!("individually optimized: area {:.0}", indiv.total_area());

    // Global flow.
    let (optimized, report) =
        opt.optimize(&indiv, target, yield_target, OptimizationGoal::MinimizeArea);
    println!(
        "global flow:            area {:.0} ({:+.1}%), yield {:.2}% -> {:.2}%{}",
        optimized.total_area(),
        100.0 * report.area_delta_fraction(),
        100.0 * report.pipeline_yield_before,
        100.0 * report.pipeline_yield_after,
        if report.met { " (target met)" } else { "" }
    );

    println!("\nper-stage report:");
    for s in &report.stages {
        println!(
            "  {:8}  area {:7.1} -> {:7.1}   stage yield {:6.2}% -> {:6.2}%   R = {:.2}",
            s.name,
            s.area_before,
            s.area_after,
            100.0 * s.yield_before,
            100.0 * s.yield_after,
            s.slope
        );
    }
}
