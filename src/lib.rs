//! # vardelay — statistical pipeline delay modeling under process variation
//!
//! Facade crate for the `vardelay` workspace, a reproduction of
//! *"Statistical Modeling of Pipeline Delay and Design of Pipeline under
//! Process Variation to Enhance Yield in sub-100nm Technologies"*
//! (Datta, Bhunia, Mukhopadhyay, Banerjee, Roy — DATE 2005).
//!
//! The workspace models each pipeline-stage delay as a correlated Gaussian
//! random variable, computes the overall pipeline delay `max_i SD_i`
//! analytically via Clark's approximation, estimates parametric yield, and
//! optimizes gate sizing across a full pipeline to meet a yield target with
//! minimum area.
//!
//! ## Sub-crates
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`stats`] | `vardelay-stats` | Gaussian math, Clark max, MVN sampling |
//! | [`process`] | `vardelay-process` | technology + variation models |
//! | [`circuit`] | `vardelay-circuit` | cells, netlists, benchmark generators |
//! | [`ssta`] | `vardelay-ssta` | statistical static timing analysis |
//! | [`mc`] | `vardelay-mc` | Monte-Carlo timing (SPICE-MC substitute) |
//! | [`core`] | `vardelay-core` | pipeline distribution, yield, design space |
//! | [`opt`] | `vardelay-opt` | yield-constrained sizing + global flow |
//! | [`engine`] | `vardelay-engine` | parallel scenario sweeps, deterministic seeding |
//! | [`obs`] | `vardelay-obs` | out-of-band tracing, phase metrics, progress |
//!
//! ## Quickstart
//!
//! ```
//! use vardelay::core::{Pipeline, StageDelay};
//! use vardelay::stats::CorrelationMatrix;
//!
//! // A 5-stage pipeline with per-stage delay distributions (ps).
//! let stages = vec![
//!     StageDelay::from_moments(180.0, 6.0)?,
//!     StageDelay::from_moments(200.0, 8.0)?,
//!     StageDelay::from_moments(195.0, 7.0)?,
//!     StageDelay::from_moments(188.0, 6.5)?,
//!     StageDelay::from_moments(192.0, 7.5)?,
//! ];
//! let corr = CorrelationMatrix::uniform(5, 0.3)?;
//! let pipe = Pipeline::new(stages, corr)?;
//!
//! let delay = pipe.delay_distribution();     // Clark's approximation
//! let yield_pct = pipe.yield_at(215.0);      // Pr{T_P <= 215 ps}
//! assert!(delay.mean() > 200.0);
//! assert!(yield_pct > 0.5 && yield_pct < 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cli;
pub mod report;

pub use vardelay_circuit as circuit;
pub use vardelay_core as core;
pub use vardelay_engine as engine;
pub use vardelay_mc as mc;
pub use vardelay_obs as obs;
pub use vardelay_opt as opt;
pub use vardelay_process as process;
pub use vardelay_ssta as ssta;
pub use vardelay_stats as stats;
