//! Command-line interface logic (thin argument parsing, no dependencies).
//!
//! Subcommands:
//!
//! * `analyze <file.bench>` — statistical timing of a `.bench` netlist.
//! * `yield --stages m:s,m:s,... --target T [--rho R]` — pipeline yield
//!   from stage moments (the paper's core model, eq. 4–9).
//! * `generate <c432|c1908|c2670|c3540|chain:N>` — emit a benchmark
//!   netlist in `.bench` format.
//! * `sweep <spec.json>` — run a scenario sweep on the unified workload
//!   engine; `sweep example` prints a ready-to-edit spec.
//! * `optimize <spec.json>` — run a yield-aware sizing campaign (the
//!   §4 / Fig. 9 flow) on the same engine; `optimize example` prints a
//!   ready-to-edit campaign, `optimize validate` lints one.
//!
//! Both workload subcommands share one driver ([`run_workload_cmd`])
//! and one set of production flags: `--workers`, `--out` (incremental
//! JSONL stream + atomic aggregate), `--shard i/n`, `--checkpoint`,
//! `--resume` — all byte-exact by the engine's determinism contract —
//! plus the out-of-band observability flags `--trace` (Chrome trace
//! JSON), `--metrics` (aggregated phase/counter JSON) and `--progress`
//! (live stderr line), none of which can change a result byte. The
//! `report` subcommand (see [`crate::report`]) prints the phase
//! breakdown of a `--trace`/`--metrics` file.
//!
//! Every subcommand rejects unrecognized flags/arguments outright —
//! like the spec files' unknown-key rejection, a typo'd option must
//! fail loudly, never silently change (or skip) part of a run.
//!
//! All functions return the output text so they are unit-testable; `main`
//! only routes arguments and prints.

use std::fmt::Write as _;
use std::io::Write as _;

use vardelay_cache::{compact_dir, verify_dir, ResultStore, UnitCache};
use vardelay_circuit::generators::{inverter_chain, iscas};
use vardelay_circuit::{parse_bench, write_bench, CellLibrary, Netlist};
use vardelay_core::{Pipeline, StageDelay};
use vardelay_engine::{
    checkpoint_line, plan_workload, run_units, Checkpoint, EngineError, KernelSpec, Shard,
    Workload, WorkloadOptions, WorkloadPlan, WorkloadReport, CONTRACT_VERSION,
};
use vardelay_process::VariationConfig;
use vardelay_ssta::SstaEngine;
use vardelay_stats::CorrelationMatrix;

/// CLI error: message for the user plus a suggestion to run `help`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (run `vardelay help`)", self.0)
    }
}

impl std::error::Error for CliError {}

/// The help text. The kernel keyword lists are generated from
/// [`KernelSpec::ALL`], so help can never drift from the parser again.
pub fn help() -> String {
    let kernels = KernelSpec::keyword_list();
    format!(
        "\
vardelay — statistical pipeline delay & yield (DATE 2005 reproduction)

USAGE:
  vardelay analyze <file.bench> [--inter MV] [--rand MV] [--sys MV]
      Statistical timing of a .bench netlist: nominal delay, mean, sigma,
      sigma/mu, and the top critical paths.

  vardelay yield --stages MU:SD,MU:SD,... --target PS [--rho R]
      Pipeline yield from per-stage delay moments (ps), using Clark's
      max approximation (eq. 4-6) and the Gaussian yield model (eq. 9).

  vardelay generate <c432|c1908|c2670|c3540|chain:N>
      Emit a benchmark netlist in .bench format on stdout.

  vardelay sweep <spec.json> [--workers N] [--out results.json]
                 [--shard i/n] [--checkpoint f.jsonl] [--resume f.jsonl]
      Run a scenario sweep (analytic model + Monte-Carlo) on the
      unified workload engine. Results are bit-identical for any
      --workers. A summary table goes to stdout; completed scenarios
      stream to --out as JSONL and the final aggregate JSON atomically
      replaces it. Each scenario picks its simulator with the backend
      field: pipeline (staged-pipeline MC, the default), netlist
      (gate-level MC on the zero-allocation hot path; supports
      CircuitSpec stages: Chain/Alu1/Alu2/Decoder/Random/Iscas), or
      analytic (closed-form SSTA/Clark, no trials). The kernel field
      picks the versioned trial-kernel contract ({kernels}): v1 is the
      default scalar kernel (the historical byte contract), v2 the
      batch kernel (~3.5x v1's trials/s under its own frozen byte
      contract), v3 the wide structure-of-arrays kernel (lane-major
      16-trial passes; the fastest). Every kernel is byte-identical to
      itself at any --workers, --shard split or resume; kernel (like
      backend) is excluded from scenario identity, so all versions
      derive the same per-trial seeds.

      Production flags (shared with optimize; all byte-exact thanks to
      content-hash unit keys + counter-based seeding):
        --shard i/n       run only the units whose journal key k (a
                          content hash of the unit's full sub-spec;
                          equal to the printed run id for campaigns)
                          satisfies k % n == i-1; the union of all
                          shards equals an unsharded run bit for bit
        --checkpoint f    journal each completed unit to f (JSONL) the
                          moment it finishes
        --resume f        skip units already in f, splicing their
                          stored results; new completions append to f.
                          Resuming from the concatenated checkpoints of
                          all n shards IS the shard merge.
        --cache DIR       persistent content-addressed result cache:
                          before executing a unit, look its content-hash
                          key up in DIR and splice the stored result
                          byte-exactly (like --resume, but global and
                          shared across specs and runs); record every
                          executed unit back. Composes with --shard,
                          --checkpoint and --resume; units found in the
                          resume journal are never double-spliced (the
                          journal wins). Safe for concurrent processes
                          (one append-only segment per writer, fsync'd
                          records). See `vardelay cache` for
                          maintenance.

      Observability flags (shared with optimize; strictly out-of-band —
      result bytes, journals and --out files are bit-identical with and
      without them, at any worker/shard count):
        --trace f         write a Chrome trace-event JSON of the run
                          (open at https://ui.perfetto.dev or in
                          chrome://tracing)
        --metrics f       write aggregated metrics JSON: wall time per
                          phase, trials/s, worker utilization, units
                          executed vs resumed-from-journal
        --progress        live single-line progress on stderr (units,
                          steps, trials/s, ETA), throttled; never
                          touches stdout or the --out/journal streams

  vardelay sweep validate <spec.json> [--cache DIR]
      Lint a spec without running it: expand, validate every scenario,
      and report the scenario count, trial total and block count plus
      each scenario's backend, kernel version, trial strategy and
      estimated relative cost per trial (gate evaluations weighted by
      the kernel's calibrated speed and the strategy's overhead). A
      spec naming an unknown strategy is rejected with the valid set.
      With --cache DIR, also report how many units are already cached
      vs to execute and the adjusted cost estimate.

  vardelay sweep example [--backend netlist] [--kernel {kernels}]
                         [--strategy antithetic|stratified|sobol|blockade]
      Print an example sweep spec (JSON) to adapt; --backend netlist
      emits a gate-level template (circuit-spec pipelines, an analytic
      model twin for model-vs-MC deltas); --kernel stamps that trial
      kernel onto every scenario; --strategy emits an inter-die-
      heavy template exercising that trial plan (scenario `trials` may
      be a bare count or an object with count/strategy/shift_sigmas).

  vardelay optimize <spec.json> [--workers N] [--out results.json]
                    [--shard i/n] [--checkpoint f.jsonl] [--resume f.jsonl]
      Run an optimization campaign: the paper's global yield-aware
      sizing flow (Fig. 9) over every (pipeline x yield target x
      target-delay policy x goal x variation) run in the spec, on the
      same unified workload engine as sweeps — including --shard,
      --checkpoint and --resume (see sweep above). Each run reports
      the individually-optimized baseline, the global flow's result,
      the analytic yield prediction and the MC-verified yield side by
      side. Results are bit-identical for any --workers. The
      yield_backend field picks what measures yield inside the sizing
      loop: analytic (Clark/SSTA, the paper flow) or netlist
      (gate-level Monte-Carlo). The kernel field ({kernels}) picks the
      trial-kernel contract for every Monte-Carlo surface of a run:
      in-loop evaluation, stage criticality and final verification.
      Under v3, verification trials additionally fan out across the
      --workers pool in fixed chunks folded in chunk order, so the
      verified bytes stay identical at every worker count.

  vardelay optimize validate <spec.json> [--cache DIR]
      Lint a campaign spec without running it: expand, validate every
      run, and report per-run footprint (stages, gates, goal, backend,
      kernel version, verification trial strategy, yield allocation,
      estimated relative cost per trial) plus total verification
      trials. A spec naming an unknown strategy is rejected with the
      valid set. With --cache DIR, also report cached-vs-to-execute
      runs and the adjusted cost estimate.

  vardelay optimize example [--high-sigma]
      Print an example campaign spec (JSON) to adapt. --high-sigma
      emits a statistical-blockade template: a 99.9% yield target
      verified by mean-shifted importance sampling to a requested
      confidence half-width (verify_trials becomes an object with
      count/strategy/ci_half_width, and the count turns into a
      ceiling rather than a fixed budget).

  vardelay cache <stats|verify|compact> DIR [--max-bytes N]
      Maintain a --cache result store. stats: segment/record/byte
      counts per contract version. verify: re-read every record and
      check its checksum (exits nonzero on corruption). compact: merge
      segments keeping the newest record per unit, drop superseded,
      stale-contract and corrupt records, and — with --max-bytes N —
      evict whole least-recently-used segments until the store fits
      the budget. Invalidation needs no command at all: bumping the
      engine contract version turns every old record into a miss.

  vardelay report <trace.json|metrics.json>
      Print the phase breakdown table of a --trace or --metrics file:
      wall time per phase (count, total, mean, share of wall), trial
      throughput, trials by kernel and by strategy (with the effective
      sample size for weighted runs), worker utilization, units
      executed vs resumed vs cached, and the result-cache hit rate.

  vardelay help
      This text.
"
    )
}

/// Parses `--key value` style options out of an argument list.
fn take_opt(args: &mut Vec<String>, key: &str) -> Result<Option<String>, CliError> {
    if let Some(i) = args.iter().position(|a| a == key) {
        if i + 1 >= args.len() {
            return Err(CliError(format!("{key} requires a value")));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

/// Parses a bare `--flag` (no value) out of an argument list.
fn take_flag(args: &mut Vec<String>, key: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == key) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn parse_f64(s: &str, what: &str) -> Result<f64, CliError> {
    s.parse::<f64>()
        .map_err(|_| CliError(format!("invalid {what}: '{s}'")))
}

/// `analyze` subcommand over already-loaded text.
pub fn analyze(name: &str, bench_text: &str, mut opts: Vec<String>) -> Result<String, CliError> {
    let inter = take_opt(&mut opts, "--inter")?
        .map(|v| parse_f64(&v, "--inter"))
        .transpose()?
        .unwrap_or(20.0);
    let rand = take_opt(&mut opts, "--rand")?
        .map(|v| parse_f64(&v, "--rand"))
        .transpose()?
        .unwrap_or(35.0);
    let sys = take_opt(&mut opts, "--sys")?
        .map(|v| parse_f64(&v, "--sys"))
        .transpose()?
        .unwrap_or(0.0);
    if !opts.is_empty() {
        return Err(CliError(format!("unrecognized arguments: {opts:?}")));
    }

    let netlist: Netlist =
        parse_bench(name, bench_text).map_err(|e| CliError(format!("parse error: {e}")))?;
    let engine = SstaEngine::new(
        CellLibrary::default(),
        VariationConfig::combined(inter, rand, sys),
        None,
    );
    let stat = engine.stage_delay(&netlist, 0);
    let nominal = vardelay_ssta::nominal_delay(&netlist, engine.library(), engine.output_load());
    let paths = vardelay_ssta::top_k_paths(&engine, &netlist, 0, 5);

    let mut out = String::new();
    let _ = writeln!(out, "{netlist}");
    let _ = writeln!(
        out,
        "variation: sigmaVth inter {inter} mV, random {rand} mV, systematic {sys} mV"
    );
    let _ = writeln!(out, "nominal delay: {nominal:.2} ps");
    let _ = writeln!(
        out,
        "statistical delay: mu {:.2} ps, sigma {:.3} ps (sigma/mu {:.3}%)",
        stat.mean(),
        stat.sd(),
        100.0 * stat.variability()
    );
    let _ = writeln!(out, "top paths (nominal ps | statistical mu/sigma):");
    for (i, p) in paths.iter().enumerate() {
        let _ = writeln!(
            out,
            "  #{}: {:.2} | {:.2} / {:.3}  ({} gates)",
            i + 1,
            p.nominal_ps,
            p.statistical.mean(),
            p.statistical.sd(),
            p.gates.len()
        );
    }
    Ok(out)
}

/// `yield` subcommand.
pub fn yield_cmd(mut opts: Vec<String>) -> Result<String, CliError> {
    let stages_arg = take_opt(&mut opts, "--stages")?
        .ok_or_else(|| CliError("--stages MU:SD,... is required".to_owned()))?;
    let target = parse_f64(
        &take_opt(&mut opts, "--target")?
            .ok_or_else(|| CliError("--target PS is required".to_owned()))?,
        "--target",
    )?;
    let rho = take_opt(&mut opts, "--rho")?
        .map(|v| parse_f64(&v, "--rho"))
        .transpose()?
        .unwrap_or(0.0);
    if !opts.is_empty() {
        return Err(CliError(format!("unrecognized arguments: {opts:?}")));
    }

    let stages: Vec<StageDelay> = stages_arg
        .split(',')
        .map(|pair| {
            let (m, s) = pair
                .split_once(':')
                .ok_or_else(|| CliError(format!("stage '{pair}' is not MU:SD")))?;
            StageDelay::from_moments(parse_f64(m, "stage mean")?, parse_f64(s, "stage sd")?)
                .map_err(|e| CliError(format!("invalid stage '{pair}': {e}")))
        })
        .collect::<Result<_, _>>()?;
    let n = stages.len();
    let corr =
        CorrelationMatrix::uniform(n, rho).map_err(|e| CliError(format!("invalid --rho: {e}")))?;
    let pipe =
        Pipeline::new(stages, corr).map_err(|e| CliError(format!("invalid pipeline: {e}")))?;
    let d = pipe.delay_distribution();

    let mut out = String::new();
    let _ = writeln!(out, "{n} stages, pairwise correlation {rho}");
    let _ = writeln!(
        out,
        "pipeline delay: mu {:.3} ps, sigma {:.3} ps (Jensen bound {:.3} ps)",
        d.mean(),
        d.sd(),
        pipe.jensen_lower_bound()
    );
    let _ = writeln!(
        out,
        "yield at {target} ps: {:.3}% (eq. 9 Gaussian)",
        100.0 * pipe.yield_at(target)
    );
    if rho == 0.0 {
        let _ = writeln!(
            out,
            "                    {:.3}% (eq. 8 exact, independent stages)",
            100.0 * pipe.yield_independent_exact(target)
        );
    }
    Ok(out)
}

/// `generate` subcommand.
pub fn generate(which: &str) -> Result<String, CliError> {
    let netlist = match which {
        "c432" => iscas::c432(),
        "c1908" => iscas::c1908(),
        "c2670" => iscas::c2670(),
        "c3540" => iscas::c3540(),
        other => {
            if let Some(n) = other.strip_prefix("chain:") {
                let len: usize = n
                    .parse()
                    .map_err(|_| CliError(format!("invalid chain length '{n}'")))?;
                if len == 0 {
                    return Err(CliError("chain length must be positive".to_owned()));
                }
                inverter_chain(len, 1.0)
            } else {
                return Err(CliError(format!(
                    "unknown benchmark '{other}' (use c432|c1908|c2670|c3540|chain:N)"
                )));
            }
        }
    };
    Ok(write_bench(&netlist))
}

/// Workload execution flags shared by every workload subcommand
/// (`sweep`, `optimize`): the unified engine pipeline behind both means
/// one parser — and one feature set — serves all of them.
struct WorkloadArgs {
    workers: Option<usize>,
    out: Option<String>,
    shard: Option<Shard>,
    checkpoint: Option<String>,
    resume: Option<String>,
    cache: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
    progress: bool,
}

fn take_workload_args(mut opts: Vec<String>) -> Result<WorkloadArgs, CliError> {
    let workers = take_opt(&mut opts, "--workers")?
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| CliError(format!("invalid --workers: '{v}'")))
        })
        .transpose()?;
    let out = take_opt(&mut opts, "--out")?;
    let shard = take_opt(&mut opts, "--shard")?
        .map(|v| Shard::parse(&v).map_err(|e| CliError(format!("invalid --shard: {e}"))))
        .transpose()?;
    let checkpoint = take_opt(&mut opts, "--checkpoint")?;
    let resume = take_opt(&mut opts, "--resume")?;
    let cache = take_opt(&mut opts, "--cache")?;
    let trace = take_opt(&mut opts, "--trace")?;
    let metrics = take_opt(&mut opts, "--metrics")?;
    let progress = take_flag(&mut opts, "--progress");
    if !opts.is_empty() {
        return Err(CliError(format!("unrecognized arguments: {opts:?}")));
    }
    Ok(WorkloadArgs {
        workers,
        out,
        shard,
        checkpoint,
        resume,
        cache,
        trace,
        metrics,
        progress,
    })
}

/// Live single-line progress on stderr (`--progress`).
///
/// Strictly observational: it reads the engine's [`ProgressUpdate`]s and
/// writes only to stderr, so it can never perturb results, `--out`
/// streams or checkpoint journals (which go to files / stdout). Updates
/// are throttled to one repaint per 100 ms; the line is erased before
/// the run summary prints so the two never interleave.
struct StderrProgress {
    started: std::time::Instant,
    last_print: std::cell::Cell<Option<std::time::Instant>>,
    last_len: std::cell::Cell<usize>,
}

impl StderrProgress {
    fn new() -> Self {
        StderrProgress {
            started: std::time::Instant::now(),
            last_print: std::cell::Cell::new(None),
            last_len: std::cell::Cell::new(0),
        }
    }

    /// Erases the progress line so subsequent stderr output starts clean.
    fn clear(&self) {
        use std::io::Write as _;
        if self.last_len.get() > 0 {
            eprint!("\r{}\r", " ".repeat(self.last_len.get()));
            let _ = std::io::stderr().flush();
            self.last_len.set(0);
        }
    }
}

/// `12345678` -> `12.3M`, for the progress line's trial counts.
fn human(n: u64) -> String {
    let f = n as f64;
    if f >= 10e6 {
        format!("{:.1}M", f / 1e6)
    } else if f >= 10e3 {
        format!("{:.1}k", f / 1e3)
    } else {
        format!("{n}")
    }
}

impl vardelay_engine::Progress for StderrProgress {
    fn update(&self, p: &vardelay_engine::ProgressUpdate) {
        use std::io::Write as _;
        let now = std::time::Instant::now();
        let done = p.steps_done >= p.steps_total;
        // Throttle repaints, but always paint the final state.
        if !done {
            if let Some(last) = self.last_print.get() {
                if now.duration_since(last).as_millis() < 100 {
                    return;
                }
            }
        }
        self.last_print.set(Some(now));
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            p.trials_done as f64 / elapsed
        } else {
            0.0
        };
        let frac = if p.trials_total > 0 {
            p.trials_done as f64 / p.trials_total as f64
        } else if p.steps_total > 0 {
            p.steps_done as f64 / p.steps_total as f64
        } else {
            1.0
        };
        let eta = if frac > 0.0 && frac < 1.0 {
            format!(", eta {:.0}s", elapsed * (1.0 - frac) / frac)
        } else {
            String::new()
        };
        let line = format!(
            "  {}/{} units, {}/{} trials ({:.0}%), {} trials/s{eta}",
            p.units_done,
            p.units_total,
            human(p.trials_done),
            human(p.trials_total),
            100.0 * frac,
            human(rate.round().max(0.0) as u64),
        );
        // Pad over the previous (possibly longer) line before `\r`.
        let pad = self.last_len.get().saturating_sub(line.len());
        eprint!("\r{line}{}", " ".repeat(pad));
        let _ = std::io::stderr().flush();
        self.last_len.set(line.len());
    }
}

/// Writes `contents` to `path` atomically (temp file + rename), so an
/// aggregate result file is never observable half-written.
fn write_atomic(path: &str, contents: &str) -> Result<(), CliError> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).map_err(|e| CliError(format!("cannot write '{tmp}': {e}")))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| CliError(format!("cannot move '{tmp}' to '{path}': {e}")))?;
    Ok(())
}

/// The one driver behind `vardelay sweep <spec>` and `vardelay optimize
/// <spec>`: runs any [`Workload`] through the unified engine pipeline.
///
/// * `--workers N` — pool size; never changes any result byte.
/// * `--shard i/n` — run only the units with `id % n == i-1`; the union
///   of all shards' outputs is bitwise identical to an unsharded run.
/// * `--checkpoint f` — journal every completed unit to `f` (JSONL) the
///   moment it finishes.
/// * `--resume f` — skip units recorded in `f`, splicing their stored
///   results byte-exactly; new completions are appended to `f` so
///   repeated kill/resume cycles keep extending one journal.
/// * `--out f` — stream completed units to `f` incrementally (JSONL),
///   then atomically replace it with the aggregate report. Nothing is
///   buffered in memory during the run; a killed run leaves a valid
///   resume journal at `f`.
fn run_workload_cmd<W>(kind: &str, w: &W, args: WorkloadArgs) -> Result<String, CliError>
where
    W: Workload,
    W::Report: WorkloadReport,
{
    let io_err = |path: &str, e: &dyn std::fmt::Display| CliError(format!("'{path}': {e}"));
    // Recording is on only when asked for; otherwise every span/counter
    // call in the engine is a single relaxed atomic load. Either way the
    // instrumentation is out-of-band: result bytes are identical.
    let session =
        (args.trace.is_some() || args.metrics.is_some()).then(vardelay_obs::Session::start);
    let resume_ckpt: Option<Checkpoint<W::UnitResult>> = match &args.resume {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
            let ckpt = Checkpoint::parse(&text)
                .map_err(|e| CliError(format!("invalid checkpoint '{path}': {e}")))?;
            if ckpt.torn_tail() {
                eprintln!(
                    "note: '{path}' ends in a torn line (killed mid-write?); that unit re-runs"
                );
            }
            // Repair before appending (we append to the resume file
            // when no separate --checkpoint is given): a new line
            // written after a torn fragment — or after a final line
            // whose trailing newline the kill cut off — would fuse two
            // lines into mid-file corruption, which a later resume
            // rightly rejects. Normalize the journal to exactly its
            // complete, newline-terminated lines.
            if args.checkpoint.is_none() {
                if let Some(repaired) =
                    vardelay_engine::journal::normalize_jsonl(&text, ckpt.torn_tail())
                {
                    std::fs::write(path, repaired).map_err(|e| io_err(path, &e))?;
                }
            }
            Some(ckpt)
        }
        None => None,
    };

    // The persistent result cache (read-write: hits splice, executed
    // units are recorded back). Declared before `options`, which
    // borrows it for the run.
    let cache: Option<UnitCache> = args
        .cache
        .as_deref()
        .map(|dir| {
            ResultStore::open(std::path::Path::new(dir))
                .map(UnitCache::new)
                .map_err(|e| CliError(format!("cannot open cache: {e}")))
        })
        .transpose()?;

    let progress = args.progress.then(StderrProgress::new);
    let mut options: WorkloadOptions<'_, W::UnitResult> = WorkloadOptions::sequential()
        .with_workers(
            args.workers
                .unwrap_or(vardelay_engine::SweepOptions::default().workers),
        );
    if let Some(shard) = args.shard {
        options = options.with_shard(shard);
    }
    if let Some(ckpt) = &resume_ckpt {
        options = options.with_resume(ckpt);
    }
    if let Some(c) = &cache {
        options = options.with_cache(c);
    }
    if let Some(p) = &progress {
        options = options.with_progress(p);
    }

    // Sinks. The journal (`--checkpoint`, or the `--resume` file itself)
    // persists after the run; the `--out` stream is replaced by the
    // aggregate at the end. When resuming into the same journal, only
    // newly executed units are appended (their lines are already there).
    let open = |path: &str, append: bool| -> Result<std::io::BufWriter<std::fs::File>, CliError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(append)
            .write(true)
            .truncate(!append)
            .open(path)
            .map_err(|e| io_err(path, &e))?;
        Ok(std::io::BufWriter::new(file))
    };
    let journal_path = args.checkpoint.as_ref().or(args.resume.as_ref());
    let journal_appends = args.checkpoint.is_none() && args.resume.is_some();
    let mut journal = journal_path
        .map(|p| open(p, journal_appends).map(|f| (p.clone(), f)))
        .transpose()?;
    let mut out_stream = args
        .out
        .as_ref()
        .map(|p| open(p, false).map(|f| (p.clone(), f)))
        .transpose()?;

    // Results are retained in memory only when there is no `--out`
    // stream to reassemble the aggregate from afterwards.
    let mut kept: Vec<Option<W::UnitResult>> = Vec::new();
    let retain = args.out.is_none();

    let started = std::time::Instant::now();
    let stats = run_units(w, &options, |slot, id, result, origin| {
        // Only journal-spliced units already have their line in the
        // append-mode journal; cache-spliced units are new to it.
        let journal_skips = origin == vardelay_engine::UnitOrigin::Journal && journal_appends;
        let line = (out_stream.is_some() || (journal.is_some() && !journal_skips))
            .then(|| checkpoint_line(id, &result));
        if let Some((path, f)) = &mut journal {
            if !journal_skips {
                let _sp = vardelay_obs::span("io", "journal").key(id);
                writeln!(
                    f,
                    "{}",
                    line.as_deref().expect("line built for the journal")
                )
                .and_then(|()| f.flush())
                .map_err(|e| EngineError::new(format!("'{path}': {e}")))?;
            }
        }
        if let Some((path, f)) = &mut out_stream {
            let _sp = vardelay_obs::span("io", "stream").key(id);
            writeln!(f, "{}", line.as_deref().expect("line built for the stream"))
                .and_then(|()| f.flush())
                .map_err(|e| EngineError::new(format!("'{path}': {e}")))?;
        }
        if retain {
            if kept.len() <= slot {
                kept.resize_with(slot + 1, || None);
            }
            kept[slot] = Some(result);
        }
        Ok(())
    })
    .map_err(|e| CliError(format!("{kind} failed: {e}")))?;
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    drop(journal);
    drop(out_stream);
    if let Some(p) = &progress {
        p.clear();
    }

    let noun = w.unit_noun();
    let shard_note = args
        .shard
        .map_or(String::new(), |s| format!(", shard {}", s.label()));
    let resumed_note = if stats.resumed > 0 {
        format!(", {} resumed", stats.resumed)
    } else {
        String::new()
    };
    let cached_note = if stats.cached > 0 {
        format!(", {} cached", stats.cached)
    } else {
        String::new()
    };
    eprintln!(
        "{kind} '{}': {} {noun}s{shard_note}{resumed_note}{cached_note}, {} workers, {:.3} s",
        w.name(),
        stats.units,
        options.workers,
        started.elapsed().as_secs_f64()
    );
    let torn_tail = resume_ckpt.as_ref().is_some_and(Checkpoint::torn_tail);
    if args.resume.is_some() {
        let torn = if torn_tail {
            " (torn tail normalized)"
        } else {
            ""
        };
        eprintln!(
            "resume: {} {noun}s spliced from journal, {} executed{torn}",
            stats.resumed, stats.executed
        );
    }
    if args.cache.is_some() {
        let lookups = stats.cached + stats.executed;
        let rate = if lookups > 0 {
            100.0 * stats.cached as f64 / lookups as f64
        } else {
            0.0
        };
        eprintln!(
            "cache: {} of {lookups} {noun}s served from cache ({rate:.0}% hit rate), {} executed and recorded",
            stats.cached, stats.executed
        );
    }
    // Stop recording before the aggregate reassembly below: the
    // recording covers exactly the run.
    let recording = session.map(vardelay_obs::Session::finish);

    // Assemble the aggregate: from memory, or — when it was streamed —
    // by reading the JSONL back, so the run itself buffered nothing.
    let report: W::Report = if let Some(path) = &args.out {
        let text = std::fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
        let ckpt: Checkpoint<W::UnitResult> = Checkpoint::parse(&text)
            .map_err(|e| CliError(format!("re-reading stream '{path}': {e}")))?;
        let results = stats
            .keys
            .iter()
            .map(|&id| {
                ckpt.get(id)
                    .cloned()
                    .ok_or_else(|| CliError(format!("stream '{path}' lost unit {id:016x}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        w.assemble(results)
    } else {
        w.assemble(
            kept.into_iter()
                .map(|r| r.expect("every unit sinks exactly once"))
                .collect(),
        )
    };

    let mut text = format!(
        "{kind} '{}' — {} {noun}s (seed {})\n\n{}",
        w.name(),
        report.unit_count(),
        w.seed(),
        report.summary_table()
    );
    if let Some(path) = &args.out {
        write_atomic(path, &report.to_json())?;
        let _ = writeln!(text, "\nresults written to {path}");
    }
    if let Some(rec) = &recording {
        if let Some(path) = &args.trace {
            let trace = vardelay_obs::chrome_trace(rec, &format!("vardelay {kind} '{}'", w.name()));
            write_atomic(path, &trace)?;
            let _ = writeln!(text, "\ntrace written to {path}");
        }
        if let Some(path) = &args.metrics {
            let info = vardelay_obs::RunInfo {
                kind,
                name: w.name(),
                workers: options.workers,
                wall_ms,
                units_total: stats.units,
                units_executed: stats.executed,
                units_resumed: stats.resumed,
                units_cached: stats.cached,
                torn_tail_normalized: torn_tail,
                steps: stats.steps,
            };
            let metrics = vardelay_obs::metrics_json(&info, &vardelay_obs::aggregate(rec));
            write_atomic(path, &metrics)?;
            let _ = writeln!(text, "\nmetrics written to {path}");
        }
    }
    Ok(text)
}

/// The one driver behind `sweep validate` and `optimize validate`: full
/// validation and footprint accounting for any [`Workload`], zero
/// trials or sizing passes run. With a cache directory, additionally
/// reports how much of the workload is already cached and the adjusted
/// cost estimate for what remains.
fn validate_workload_cmd<W>(kind: &str, w: &W, cache_dir: Option<&str>) -> Result<String, CliError>
where
    W: Workload,
    W::Plan: WorkloadPlan,
{
    let plan = plan_workload(w).map_err(|e| CliError(format!("invalid {kind} spec: {e}")))?;
    let mut out = plan.render();
    if let Some(dir) = cache_dir {
        // A missing cache dir is simply cold, not an error: validate
        // must never create state.
        let path = std::path::Path::new(dir);
        let store = path
            .is_dir()
            .then(|| ResultStore::open_read_only(path))
            .transpose()
            .map_err(|e| CliError(format!("cannot open cache: {e}")))?;
        let units = w
            .prepare()
            .map_err(|e| CliError(format!("invalid {kind} spec: {e}")))?;
        let est_trials =
            |u: &W::Unit| -> u64 { (0..w.unit_steps(u)).map(|s| w.step_trials(u, s)).sum() };
        let mut cached = 0usize;
        let (mut trials_all, mut trials_todo) = (0u64, 0u64);
        for u in &units {
            let t = est_trials(u);
            trials_all += t;
            if store
                .as_ref()
                .is_some_and(|s| s.contains(w.unit_key(u), CONTRACT_VERSION))
            {
                cached += 1;
            } else {
                trials_todo += t;
            }
        }
        let _ = writeln!(
            out,
            "\ncache '{dir}': {cached} of {} {}s cached, {} to execute",
            units.len(),
            w.unit_noun(),
            units.len() - cached
        );
        if trials_all > 0 {
            let _ = writeln!(
                out,
                "adjusted cost: {trials_todo} of {trials_all} est. trials ({:.0}% of cold)",
                100.0 * trials_todo as f64 / trials_all as f64
            );
        }
    }
    Ok(format!("{out}\nspec OK\n"))
}

/// `sweep` subcommand over already-loaded spec text.
///
/// Returns the summary table; when `--out` is given the full JSON
/// results are written there (the JSON artifact is bit-identical for
/// any worker count — timing goes to stderr only). See
/// [`run_workload_cmd`] for the shared `--shard` / `--checkpoint` /
/// `--resume` flags.
pub fn sweep_cmd(spec_text: &str, opts: Vec<String>) -> Result<String, CliError> {
    let args = take_workload_args(opts)?;
    let sweep = vardelay_engine::Sweep::from_json(spec_text)
        .map_err(|e| CliError(format!("invalid sweep spec: {e}")))?;
    run_workload_cmd("sweep", &sweep, args)
}

/// `sweep validate` subcommand over already-loaded spec text: full
/// validation and cost accounting, zero trials run. `--cache DIR` adds
/// the cached-vs-to-execute breakdown.
pub fn sweep_validate_cmd(spec_text: &str, mut opts: Vec<String>) -> Result<String, CliError> {
    let cache = take_opt(&mut opts, "--cache")?;
    no_more_args("sweep validate", &opts)?;
    let sweep = vardelay_engine::Sweep::from_json(spec_text)
        .map_err(|e| CliError(format!("invalid sweep spec: {e}")))?;
    validate_workload_cmd("sweep", &sweep, cache.as_deref())
}

/// `sweep example` subcommand: the spec template for a backend,
/// optionally stamped with a trial-kernel version (`--kernel v2`), or a
/// trial-plan template (`--strategy antithetic|stratified|sobol|blockade`).
pub fn sweep_example_cmd(mut opts: Vec<String>) -> Result<String, CliError> {
    let backend = take_opt(&mut opts, "--backend")?;
    let kernel = take_opt(&mut opts, "--kernel")?;
    let strategy = take_opt(&mut opts, "--strategy")?;
    if !opts.is_empty() {
        return Err(CliError(format!("unrecognized arguments: {opts:?}")));
    }
    if strategy.is_some() && backend.is_some() {
        return Err(CliError(
            "--strategy emits its own template; it cannot be combined with --backend".to_owned(),
        ));
    }
    let mut sweep = match (strategy.as_deref(), backend.as_deref()) {
        (Some(s), _) => {
            let s = vardelay_engine::StrategySpec::parse(s).map_err(CliError)?;
            vardelay_engine::Sweep::example_trial_plan(s)
        }
        (None, None | Some("pipeline")) => vardelay_engine::Sweep::example(),
        (None, Some("netlist")) => vardelay_engine::Sweep::example_netlist(),
        (None, Some(other)) => {
            return Err(CliError(format!(
                "no example for backend '{other}' (use pipeline|netlist)"
            )))
        }
    };
    if let Some(k) = kernel.as_deref() {
        let k = vardelay_engine::KernelSpec::parse(k).map_err(CliError)?;
        for s in &mut sweep.scenarios {
            s.kernel = k;
        }
        if let Some(grid) = sweep.grid.as_mut() {
            grid.kernel = k;
        }
    }
    Ok(sweep.to_json() + "\n")
}

/// `optimize` subcommand over already-loaded campaign spec text.
///
/// Returns the summary table; when `--out` is given the full JSON
/// results are written there (bit-identical for any worker count —
/// timing goes to stderr only). See [`run_workload_cmd`] for the shared
/// `--shard` / `--checkpoint` / `--resume` flags.
pub fn optimize_cmd(spec_text: &str, opts: Vec<String>) -> Result<String, CliError> {
    let args = take_workload_args(opts)?;
    let campaign = vardelay_engine::OptimizationCampaign::from_json(spec_text)
        .map_err(|e| CliError(format!("invalid campaign spec: {e}")))?;
    run_workload_cmd("campaign", &campaign, args)
}

/// `optimize validate` subcommand: full validation and footprint
/// accounting, zero sizing passes and zero trials run. `--cache DIR`
/// adds the cached-vs-to-execute breakdown.
pub fn optimize_validate_cmd(spec_text: &str, mut opts: Vec<String>) -> Result<String, CliError> {
    let cache = take_opt(&mut opts, "--cache")?;
    no_more_args("optimize validate", &opts)?;
    let campaign = vardelay_engine::OptimizationCampaign::from_json(spec_text)
        .map_err(|e| CliError(format!("invalid campaign spec: {e}")))?;
    validate_workload_cmd("campaign", &campaign, cache.as_deref())
}

/// `optimize example` subcommand: the campaign spec template.
/// `--high-sigma` swaps in the statistical-blockade 99.9%-yield
/// template instead.
pub fn optimize_example_cmd(mut opts: Vec<String>) -> Result<String, CliError> {
    let high_sigma = take_flag(&mut opts, "--high-sigma");
    no_more_args("optimize example", &opts)?;
    let campaign = if high_sigma {
        vardelay_engine::OptimizationCampaign::example_high_sigma()
    } else {
        vardelay_engine::OptimizationCampaign::example()
    };
    Ok(campaign.to_json() + "\n")
}

/// `cache` subcommand: maintenance for a persistent result-cache
/// directory. `stats` summarizes, `verify` checksums every record
/// (nonzero exit on corruption), `compact` merges segments, drops
/// superseded/stale-contract records, and applies an optional
/// `--max-bytes` LRU budget.
pub fn cache_cmd(args: &[String]) -> Result<String, CliError> {
    let usage =
        || CliError("usage: vardelay cache <stats|verify|compact> DIR [--max-bytes N]".to_owned());
    let action = args.first().ok_or_else(usage)?.as_str();
    let mut opts: Vec<String> = args[1..].to_vec();
    let max_bytes = take_opt(&mut opts, "--max-bytes")?;
    if opts.len() != 1 {
        return Err(usage());
    }
    let dir = std::path::PathBuf::from(&opts[0]);
    if max_bytes.is_some() && action != "compact" {
        return Err(CliError(format!(
            "--max-bytes only applies to `cache compact`, not `cache {action}`"
        )));
    }
    match action {
        "stats" => {
            let store = ResultStore::open_read_only(&dir)
                .map_err(|e| CliError(format!("cannot open cache: {e}")))?;
            let s = store.stats();
            let mut out = format!(
                "cache '{}': {} segment(s), {} record(s), {} live unit(s), {} bytes\n",
                dir.display(),
                s.segments,
                s.records,
                s.live_units,
                s.bytes
            );
            for (contract, n) in &s.contracts {
                let current = if *contract == CONTRACT_VERSION {
                    " (current)"
                } else {
                    ""
                };
                let _ = writeln!(out, "  contract v{contract}: {n} record(s){current}");
            }
            if s.torn_segments > 0 {
                let _ = writeln!(
                    out,
                    "  {} torn segment(s) — final record lost to an interrupted write; run `vardelay cache compact` to trim",
                    s.torn_segments
                );
            }
            Ok(out)
        }
        "verify" => {
            let report =
                verify_dir(&dir).map_err(|e| CliError(format!("cannot verify cache: {e}")))?;
            if !report.corrupt.is_empty() {
                let mut msg = format!(
                    "cache '{}': {} corrupt record(s) out of {}:\n",
                    dir.display(),
                    report.corrupt.len(),
                    report.corrupt.len() + report.valid_records
                );
                for line in &report.corrupt {
                    let _ = writeln!(msg, "  {line}");
                }
                msg.push_str("run `vardelay cache compact` after investigating, or delete the damaged segment(s)");
                return Err(CliError(msg));
            }
            let torn = if report.torn_segments > 0 {
                format!(", {} torn tail(s) tolerated", report.torn_segments)
            } else {
                String::new()
            };
            Ok(format!(
                "cache '{}': {} segment(s), {} record(s) verified{torn}\ncache OK\n",
                dir.display(),
                report.segments,
                report.valid_records
            ))
        }
        "compact" => {
            let budget = max_bytes
                .map(|s| {
                    s.parse::<u64>().map_err(|_| {
                        CliError(format!("--max-bytes expects a byte count, got '{s}'"))
                    })
                })
                .transpose()?;
            let report = compact_dir(&dir, CONTRACT_VERSION, budget)
                .map_err(|e| CliError(format!("cannot compact cache: {e}")))?;
            let mut out = format!(
                "cache '{}': {} -> {} segment(s), {} -> {} bytes\n",
                dir.display(),
                report.segments_before,
                report.segments_after,
                report.bytes_before,
                report.bytes_after
            );
            let _ = writeln!(
                out,
                "kept {} record(s), dropped {} superseded/stale record(s)",
                report.kept_records, report.dropped_records
            );
            if report.evicted_segments > 0 {
                let _ = writeln!(
                    out,
                    "evicted {} least-recently-used segment(s) to meet the byte budget",
                    report.evicted_segments
                );
            }
            Ok(out)
        }
        other => Err(CliError(format!(
            "unknown cache action '{other}' (expected stats, verify or compact)"
        ))),
    }
}

/// Rejects stray arguments after a subcommand that takes none.
fn no_more_args(what: &str, rest: &[String]) -> Result<(), CliError> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(CliError(format!("unrecognized {what} arguments: {rest:?}")))
    }
}

/// Routes a full argument vector (without argv(0)); returns output text.
pub fn run(args: Vec<String>) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(help()),
        Some("analyze") => {
            let file = args
                .get(1)
                .ok_or_else(|| CliError("analyze requires a .bench file".to_owned()))?;
            let text = std::fs::read_to_string(file)
                .map_err(|e| CliError(format!("cannot read '{file}': {e}")))?;
            analyze(file, &text, args[2..].to_vec())
        }
        Some("yield") => yield_cmd(args[1..].to_vec()),
        Some("sweep") => match args.get(1).map(String::as_str) {
            None => Err(CliError(
                "sweep requires a spec file (or `example`/`validate`)".to_owned(),
            )),
            Some("example") => sweep_example_cmd(args[2..].to_vec()),
            Some("validate") => {
                let file = args
                    .get(2)
                    .ok_or_else(|| CliError("sweep validate requires a spec file".to_owned()))?;
                let text = std::fs::read_to_string(file)
                    .map_err(|e| CliError(format!("cannot read '{file}': {e}")))?;
                sweep_validate_cmd(&text, args[3..].to_vec())
            }
            Some(file) => {
                let text = std::fs::read_to_string(file)
                    .map_err(|e| CliError(format!("cannot read '{file}': {e}")))?;
                sweep_cmd(&text, args[2..].to_vec())
            }
        },
        Some("optimize") => match args.get(1).map(String::as_str) {
            None => Err(CliError(
                "optimize requires a spec file (or `example`/`validate`)".to_owned(),
            )),
            Some("example") => optimize_example_cmd(args[2..].to_vec()),
            Some("validate") => {
                let file = args
                    .get(2)
                    .ok_or_else(|| CliError("optimize validate requires a spec file".to_owned()))?;
                let text = std::fs::read_to_string(file)
                    .map_err(|e| CliError(format!("cannot read '{file}': {e}")))?;
                optimize_validate_cmd(&text, args[3..].to_vec())
            }
            Some(file) => {
                let text = std::fs::read_to_string(file)
                    .map_err(|e| CliError(format!("cannot read '{file}': {e}")))?;
                optimize_cmd(&text, args[2..].to_vec())
            }
        },
        Some("cache") => cache_cmd(&args[1..]),
        Some("report") => {
            let file = args.get(1).ok_or_else(|| {
                CliError("report requires a --trace or --metrics file".to_owned())
            })?;
            no_more_args("report", &args[2..])?;
            let text = std::fs::read_to_string(file)
                .map_err(|e| CliError(format!("cannot read '{file}': {e}")))?;
            crate::report::report_cmd(file, &text)
        }
        Some("generate") => {
            let which = args
                .get(1)
                .ok_or_else(|| CliError("generate requires a benchmark name".to_owned()))?;
            no_more_args("generate", &args[2..])?;
            generate(which)
        }
        Some(other) => Err(CliError(format!("unknown subcommand '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_lists_subcommands() {
        let h = help();
        for cmd in ["analyze", "yield", "generate", "sweep", "optimize"] {
            assert!(h.contains(cmd));
        }
    }

    #[test]
    fn optimize_example_is_a_valid_campaign() {
        let json = run(vec!["optimize".into(), "example".into()]).unwrap();
        let campaign = vardelay_engine::OptimizationCampaign::from_json(&json).unwrap();
        assert!(campaign.expand().len() >= 4);
        assert!(vardelay_engine::plan_campaign(&campaign).is_ok());
    }

    #[test]
    fn optimize_validate_reports_without_running() {
        let spec = vardelay_engine::OptimizationCampaign::example().to_json();
        let out = optimize_validate_cmd(&spec, vec![]).unwrap();
        assert!(out.contains("spec OK"), "{out}");
        assert!(out.contains("ensure-yield"), "{out}");
        assert!(out.contains("analytic"), "{out}");
        assert!(out.contains("netlist"), "{out}");
        // Invalid specs are rejected with the engine's context.
        let mut bad = vardelay_engine::OptimizationCampaign::example();
        bad.runs[0].rounds = 0;
        let err = optimize_validate_cmd(&bad.to_json(), vec![]).unwrap_err();
        assert!(err.to_string().contains("rounds"), "{err}");
        assert!(optimize_validate_cmd("not json", vec![]).is_err());
        assert!(run(vec!["optimize".into(), "validate".into()]).is_err());
        assert!(run(vec!["optimize".into()]).is_err());
    }

    #[test]
    fn optimize_cmd_runs_a_small_campaign() {
        let mut campaign = vardelay_engine::OptimizationCampaign::example();
        campaign.grid = None;
        campaign.runs.truncate(1);
        campaign.runs[0].rounds = 1;
        campaign.runs[0].verify_trials = 256;
        if let vardelay_opt::TargetDelayPolicy::FrontierQuantile { refine, .. } =
            &mut campaign.runs[0].target_delay
        {
            *refine = 1;
        }
        let out = optimize_cmd(&campaign.to_json(), vec!["--workers".into(), "2".into()]).unwrap();
        assert!(out.contains("1 runs"), "{out}");
        assert!(out.contains("chains"), "{out}");
    }

    #[test]
    fn unknown_flags_are_rejected_everywhere() {
        // A typo'd option must fail loudly, never be silently dropped.
        let sweep_spec = vardelay_engine::Sweep::example().to_json();
        assert!(sweep_cmd(&sweep_spec, vec!["--frob".into(), "1".into()]).is_err());
        assert!(run(vec![
            "sweep".into(),
            "example".into(),
            "--frob".into(),
            "x".into()
        ])
        .is_err());
        let campaign_spec = vardelay_engine::OptimizationCampaign::example().to_json();
        assert!(optimize_cmd(&campaign_spec, vec!["--frob".into(), "1".into()]).is_err());
        assert!(optimize_cmd(&campaign_spec, vec!["--workers".into(), "x".into()]).is_err());
        assert!(run(vec!["optimize".into(), "example".into(), "--frob".into()]).is_err());
        // Trailing junk after fixed-shape subcommands errors too.
        assert!(run(vec!["generate".into(), "c432".into(), "--frob".into()]).is_err());
        // Malformed workload flags fail loudly as well.
        assert!(sweep_cmd(&sweep_spec, vec!["--shard".into(), "0/2".into()]).is_err());
        assert!(sweep_cmd(&sweep_spec, vec!["--shard".into(), "nope".into()]).is_err());
        assert!(sweep_cmd(&sweep_spec, vec!["--resume".into(), "/no/such/file".into()]).is_err());
    }

    /// A scratch path under the test temp dir, unique per name.
    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("vardelay-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn shard_checkpoint_resume_flags_merge_byte_identically() {
        // The CLI recipe end to end: shard runs journal to checkpoints,
        // a resume run over the concatenated journals emits the merged
        // aggregate — byte-identical to the unsharded run.
        let mut sweep = vardelay_engine::Sweep::example();
        sweep.grid = None;
        for s in &mut sweep.scenarios {
            s.trials = 300;
        }
        let spec = sweep.to_json();

        let full = tmp("full.json");
        sweep_cmd(&spec, vec!["--out".into(), full.clone()]).unwrap();

        let mut merged_lines = String::new();
        for i in 1..=2 {
            let ckpt = tmp(&format!("shard{i}.jsonl"));
            let out = sweep_cmd(
                &spec,
                vec![
                    "--shard".into(),
                    format!("{i}/2"),
                    "--checkpoint".into(),
                    ckpt.clone(),
                ],
            )
            .unwrap();
            assert!(out.contains("scenarios"), "{out}");
            merged_lines.push_str(&std::fs::read_to_string(&ckpt).unwrap());
        }
        let all = tmp("all.jsonl");
        std::fs::write(&all, &merged_lines).unwrap();

        let merged = tmp("merged.json");
        let out = sweep_cmd(
            &spec,
            vec!["--resume".into(), all, "--out".into(), merged.clone()],
        )
        .unwrap();
        assert!(out.contains("2 scenarios"), "{out}");
        assert_eq!(
            std::fs::read_to_string(&full).unwrap(),
            std::fs::read_to_string(&merged).unwrap(),
            "shard-merge must be byte-identical"
        );
    }

    #[test]
    fn resume_appends_new_completions_to_the_journal() {
        let mut sweep = vardelay_engine::Sweep::example();
        sweep.grid = None;
        for s in &mut sweep.scenarios {
            s.trials = 300;
        }
        let spec = sweep.to_json();

        let journal = tmp("journal.jsonl");
        sweep_cmd(&spec, vec!["--checkpoint".into(), journal.clone()]).unwrap();
        let lines: Vec<String> = std::fs::read_to_string(&journal)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect();
        assert_eq!(lines.len(), 2, "one journal line per scenario");

        // "Kill": keep the first line only; resume extends the journal
        // back to completeness (no duplicate for the resumed unit).
        std::fs::write(&journal, format!("{}\n", lines[0])).unwrap();
        sweep_cmd(&spec, vec!["--resume".into(), journal.clone()]).unwrap();
        let after = std::fs::read_to_string(&journal).unwrap();
        assert_eq!(
            after.lines().count(),
            2,
            "journal grew by the new unit only"
        );
        assert!(after.starts_with(&lines[0]), "resumed line left in place");

        // A kill mid-append leaves a torn fragment; resuming must drop
        // it (re-running that unit) rather than fuse appended lines
        // onto it — the journal stays parseable for the NEXT resume.
        std::fs::write(
            &journal,
            format!("{}\n{}", lines[0], &lines[1][..lines[1].len() / 2]),
        )
        .unwrap();
        sweep_cmd(&spec, vec!["--resume".into(), journal.clone()]).unwrap();
        let after = std::fs::read_to_string(&journal).unwrap();
        assert_eq!(
            after.lines().count(),
            2,
            "torn fragment dropped, unit re-ran"
        );
        sweep_cmd(&spec, vec!["--resume".into(), journal.clone()]).unwrap();

        // Subtler kill: the last line's bytes all made it but its
        // trailing newline didn't. The line parses (no torn tail), but
        // appending straight after it would fuse two lines — the
        // journal must be normalized before the append.
        std::fs::write(&journal, format!("{}\n{}", lines[0], lines[1])).unwrap();
        sweep_cmd(&spec, vec!["--resume".into(), journal.clone()]).unwrap();
        let after = std::fs::read_to_string(&journal).unwrap();
        assert!(after.ends_with('\n'), "journal normalized");
        assert_eq!(after.lines().count(), 2, "both units resumed, no fusion");
        sweep_cmd(&spec, vec!["--resume".into(), journal.clone()]).unwrap();
    }

    #[test]
    fn observability_flags_are_out_of_band() {
        // The hard invariant: --trace/--metrics/--progress may not
        // change a single result byte.
        let mut sweep = vardelay_engine::Sweep::example();
        sweep.grid = None;
        for s in &mut sweep.scenarios {
            s.trials = 300;
        }
        let spec = sweep.to_json();

        let plain = tmp("plain.json");
        sweep_cmd(&spec, vec!["--out".into(), plain.clone()]).unwrap();

        let traced = tmp("traced.json");
        let trace = tmp("trace.json");
        let metrics = tmp("metrics.json");
        let out = sweep_cmd(
            &spec,
            vec![
                "--out".into(),
                traced.clone(),
                "--trace".into(),
                trace.clone(),
                "--metrics".into(),
                metrics.clone(),
                "--progress".into(),
            ],
        )
        .unwrap();
        assert!(out.contains("trace written to"), "{out}");
        assert!(out.contains("metrics written to"), "{out}");
        assert_eq!(
            std::fs::read_to_string(&plain).unwrap(),
            std::fs::read_to_string(&traced).unwrap(),
            "tracing must not change result bytes"
        );

        // Both artifacts are valid JSON of their respective schemas and
        // the report subcommand renders each. (Concurrent tests in this
        // process may add spans of their own while recording is on —
        // assert presence, not exact counts.)
        let tv: serde::Value =
            serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        assert!(tv.get("traceEvents").is_some());
        let mv: serde::Value =
            serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(mv.get("phases").is_some());
        assert_eq!(mv.get("kind"), Some(&serde::Value::String("sweep".into())));

        let r = run(vec!["report".into(), metrics]).unwrap();
        assert!(r.contains("mc/block"), "{r}");
        assert!(r.contains("wall time"), "{r}");
        let r = run(vec!["report".into(), trace]).unwrap();
        assert!(r.contains("mc/block"), "{r}");

        // report's own argument errors.
        assert!(run(vec!["report".into()]).is_err());
        assert!(run(vec!["report".into(), "/no/such/file".into()]).is_err());
        assert!(
            run(vec!["report".into(), plain]).is_err(),
            "not a trace/metrics file"
        );
    }

    #[test]
    fn metrics_count_resumed_vs_executed_units() {
        let mut sweep = vardelay_engine::Sweep::example();
        sweep.grid = None;
        for s in &mut sweep.scenarios {
            s.trials = 300;
        }
        let spec = sweep.to_json();

        let journal = tmp("resume-metrics.jsonl");
        sweep_cmd(&spec, vec!["--checkpoint".into(), journal.clone()]).unwrap();
        let first = std::fs::read_to_string(&journal)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .to_owned();
        std::fs::write(&journal, format!("{first}\n")).unwrap();

        let metrics = tmp("resume-metrics.json");
        sweep_cmd(
            &spec,
            vec![
                "--resume".into(),
                journal,
                "--metrics".into(),
                metrics.clone(),
            ],
        )
        .unwrap();
        let mv: serde::Value =
            serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        let units = mv.get("units").expect("units section");
        assert_eq!(units.get("resumed"), units.get("executed"), "1 and 1");
        assert_eq!(
            units.get("total"),
            Some(&serde::Value::Number(serde::Number::U64(2)))
        );
    }

    /// A small two-scenario sweep used by the cache tests.
    fn cache_test_sweep() -> vardelay_engine::Sweep {
        let mut sweep = vardelay_engine::Sweep::example();
        sweep.grid = None;
        for s in &mut sweep.scenarios {
            s.trials = 300;
        }
        sweep
    }

    /// A fresh cache directory under the test temp dir.
    fn cache_dir(name: &str) -> String {
        let dir = tmp(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn metrics_units(path: &str) -> (u64, u64, u64) {
        let v: serde::Value =
            serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
        let n = |v: &serde::Value, key: &str| match v.get(key) {
            Some(&serde::Value::Number(serde::Number::U64(u))) => u,
            other => panic!("units.{key} missing or non-integer: {other:?}"),
        };
        let units = v.get("units").expect("units section");
        (
            n(units, "executed"),
            n(units, "resumed"),
            n(units, "cached"),
        )
    }

    #[test]
    fn cache_cold_then_warm_is_byte_identical_and_executes_nothing() {
        let spec = cache_test_sweep().to_json();
        let dir = cache_dir("cache-warm");

        let cold = tmp("cache-cold.json");
        let out = sweep_cmd(
            &spec,
            vec!["--out".into(), cold.clone(), "--cache".into(), dir.clone()],
        )
        .unwrap();
        assert!(out.contains("2 scenarios"), "{out}");

        // Warm run at a different worker count: zero units execute and
        // the aggregate bytes match the cold run exactly.
        let warm = tmp("cache-warm.json");
        let metrics = tmp("cache-warm-metrics.json");
        let out = sweep_cmd(
            &spec,
            vec![
                "--out".into(),
                warm.clone(),
                "--cache".into(),
                dir.clone(),
                "--workers".into(),
                "8".into(),
                "--metrics".into(),
                metrics.clone(),
            ],
        )
        .unwrap();
        assert!(out.contains("2 scenarios"), "{out}");
        assert_eq!(
            std::fs::read_to_string(&cold).unwrap(),
            std::fs::read_to_string(&warm).unwrap(),
            "warm cache run must reproduce cold bytes"
        );
        assert_eq!(metrics_units(&metrics), (0, 0, 2), "warm run executes 0");
        let mv: serde::Value =
            serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        let cache = mv.get("cache").expect("cache section");
        assert_eq!(
            cache.get("hits"),
            Some(&serde::Value::Number(serde::Number::U64(2))),
            "{mv:?}"
        );

        // `validate --cache` sees the same thing without running.
        let v = sweep_validate_cmd(&spec, vec!["--cache".into(), dir.clone()]).unwrap();
        assert!(v.contains("2 of 2 scenarios cached, 0 to execute"), "{v}");
        assert!(v.contains("adjusted cost: 0 of 600"), "{v}");
        // A cold validate against a missing dir reports all-miss.
        let v = sweep_validate_cmd(&spec, vec!["--cache".into(), cache_dir("cache-none")]).unwrap();
        assert!(v.contains("0 of 2 scenarios cached, 2 to execute"), "{v}");
        assert!(v.contains("adjusted cost: 600 of 600"), "{v}");
    }

    #[test]
    fn cache_hits_cross_spec_files_but_not_kernel_twins() {
        let sweep = cache_test_sweep();
        let dir = cache_dir("cache-twins");
        sweep_cmd(&sweep.to_json(), vec!["--cache".into(), dir.clone()]).unwrap();

        // A different spec file sharing one scenario hits on it: unit
        // identity is the scenario itself, not the file it came from.
        let mut other = sweep.clone();
        other.name = "other-sweep".to_owned();
        other.scenarios.truncate(1);
        let metrics = tmp("cache-cross.json");
        sweep_cmd(
            &other.to_json(),
            vec![
                "--cache".into(),
                dir.clone(),
                "--metrics".into(),
                metrics.clone(),
            ],
        )
        .unwrap();
        assert_eq!(metrics_units(&metrics), (0, 0, 1), "cross-file hit");

        // The same scenario under the v2 kernel is a different byte
        // contract — it must MISS, not serve v1 bytes.
        let mut twin = other.clone();
        twin.scenarios[0].kernel = vardelay_engine::KernelSpec::V2;
        let metrics = tmp("cache-twin.json");
        sweep_cmd(
            &twin.to_json(),
            vec![
                "--cache".into(),
                dir.clone(),
                "--metrics".into(),
                metrics.clone(),
            ],
        )
        .unwrap();
        assert_eq!(metrics_units(&metrics), (1, 0, 0), "kernel twin misses");

        // Likewise a trial-plan twin: the same scenario under a
        // variance-reduction strategy produces different bytes by
        // contract, so it must MISS rather than serve plain-MC bytes.
        let mut plan_twin = other.clone();
        plan_twin.scenarios[0].trial_plan.strategy = vardelay_engine::StrategySpec::Stratified;
        let metrics = tmp("cache-plan-twin.json");
        sweep_cmd(
            &plan_twin.to_json(),
            vec!["--cache".into(), dir, "--metrics".into(), metrics.clone()],
        )
        .unwrap();
        assert_eq!(metrics_units(&metrics), (1, 0, 0), "strategy twin misses");
    }

    #[test]
    fn journal_entries_win_over_cache_entries() {
        // --resume + --cache together must not double-splice: a unit
        // present in BOTH the journal and the cache counts once, as
        // resumed — the journal is the per-run source of truth.
        let spec = cache_test_sweep().to_json();
        let dir = cache_dir("cache-journal");

        let journal = tmp("cache-journal.jsonl");
        let full = tmp("cache-journal-full.json");
        sweep_cmd(
            &spec,
            vec![
                "--cache".into(),
                dir.clone(),
                "--checkpoint".into(),
                journal.clone(),
                "--out".into(),
                full.clone(),
            ],
        )
        .unwrap();

        let metrics = tmp("cache-journal-metrics.json");
        let merged = tmp("cache-journal-merged.json");
        sweep_cmd(
            &spec,
            vec![
                "--cache".into(),
                dir.clone(),
                "--resume".into(),
                journal,
                "--out".into(),
                merged.clone(),
                "--metrics".into(),
                metrics.clone(),
            ],
        )
        .unwrap();
        assert_eq!(metrics_units(&metrics), (0, 2, 0), "journal wins");
        assert_eq!(
            std::fs::read_to_string(&full).unwrap(),
            std::fs::read_to_string(&merged).unwrap(),
        );
    }

    #[test]
    fn shard_resume_cache_composition_is_byte_identical() {
        let spec = cache_test_sweep().to_json();
        let full = tmp("cache-shard-full.json");
        sweep_cmd(&spec, vec!["--out".into(), full.clone()]).unwrap();

        // Sharded cold runs populate one shared cache dir.
        let dir = cache_dir("cache-shard");
        let mut merged_lines = String::new();
        for i in 1..=2 {
            let ckpt = tmp(&format!("cache-shard{i}.jsonl"));
            sweep_cmd(
                &spec,
                vec![
                    "--shard".into(),
                    format!("{i}/2"),
                    "--cache".into(),
                    dir.clone(),
                    "--checkpoint".into(),
                    ckpt.clone(),
                ],
            )
            .unwrap();
            merged_lines.push_str(&std::fs::read_to_string(&ckpt).unwrap());
        }
        let all = tmp("cache-shard-all.jsonl");
        std::fs::write(&all, &merged_lines).unwrap();

        // The merge run composes --resume with --cache; and a plain
        // warm run serves everything from the cache alone.
        let merged = tmp("cache-shard-merged.json");
        sweep_cmd(
            &spec,
            vec![
                "--resume".into(),
                all,
                "--cache".into(),
                dir.clone(),
                "--out".into(),
                merged.clone(),
            ],
        )
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&full).unwrap(),
            std::fs::read_to_string(&merged).unwrap(),
        );
        let warm = tmp("cache-shard-warm.json");
        let metrics = tmp("cache-shard-metrics.json");
        sweep_cmd(
            &spec,
            vec![
                "--cache".into(),
                dir,
                "--out".into(),
                warm.clone(),
                "--metrics".into(),
                metrics.clone(),
            ],
        )
        .unwrap();
        assert_eq!(metrics_units(&metrics), (0, 0, 2), "shards filled cache");
        assert_eq!(
            std::fs::read_to_string(&full).unwrap(),
            std::fs::read_to_string(&warm).unwrap(),
        );
    }

    #[test]
    fn cache_subcommand_stats_verify_compact() {
        let spec = cache_test_sweep().to_json();
        let dir = cache_dir("cache-cmd");
        sweep_cmd(&spec, vec!["--cache".into(), dir.clone()]).unwrap();

        let out = run(vec!["cache".into(), "stats".into(), dir.clone()]).unwrap();
        assert!(out.contains("2 record(s), 2 live unit(s)"), "{out}");
        assert!(out.contains("(current)"), "{out}");
        let out = run(vec!["cache".into(), "verify".into(), dir.clone()]).unwrap();
        assert!(out.contains("cache OK"), "{out}");

        // Flip one payload byte: verify fails loudly with the unit key.
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| {
                let n = p.file_name().unwrap().to_string_lossy().into_owned();
                n.starts_with("seg-") && n.ends_with(".jsonl")
            })
            .expect("a segment file");
        let mut bytes = std::fs::read(&seg).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x01;
        std::fs::write(&seg, bytes).unwrap();
        let err = run(vec!["cache".into(), "verify".into(), dir.clone()]).unwrap_err();
        assert!(err.to_string().contains("corrupt record"), "{err}");

        // Compact drops the damaged record; verify is clean again and a
        // warm run transparently re-executes the lost unit.
        let out = run(vec!["cache".into(), "compact".into(), dir.clone()]).unwrap();
        assert!(out.contains("dropped"), "{out}");
        let out = run(vec!["cache".into(), "verify".into(), dir.clone()]).unwrap();
        assert!(out.contains("cache OK"), "{out}");
        let metrics = tmp("cache-cmd-metrics.json");
        sweep_cmd(
            &spec,
            vec![
                "--cache".into(),
                dir.clone(),
                "--metrics".into(),
                metrics.clone(),
            ],
        )
        .unwrap();
        assert_eq!(metrics_units(&metrics), (1, 0, 1), "lost unit re-ran");

        // Argument errors.
        assert!(run(vec!["cache".into()]).is_err());
        assert!(run(vec!["cache".into(), "stats".into()]).is_err());
        assert!(run(vec!["cache".into(), "frob".into(), dir.clone()]).is_err());
        assert!(run(vec![
            "cache".into(),
            "stats".into(),
            dir,
            "--max-bytes".into(),
            "1".into()
        ])
        .is_err());
        assert!(run(vec![
            "cache".into(),
            "stats".into(),
            cache_dir("cache-missing")
        ])
        .is_err());
    }

    #[test]
    fn sweep_example_is_a_valid_spec() {
        let json = run(vec!["sweep".into(), "example".into()]).unwrap();
        let sweep = vardelay_engine::Sweep::from_json(&json).unwrap();
        assert!(sweep.expand().len() >= 16);
    }

    #[test]
    fn sweep_example_netlist_emits_gate_level_template() {
        let json = run(vec![
            "sweep".into(),
            "example".into(),
            "--backend".into(),
            "netlist".into(),
        ])
        .unwrap();
        assert!(json.contains("\"backend\": \"netlist\""), "{json}");
        assert!(json.contains("\"backend\": \"analytic\""), "{json}");
        let sweep = vardelay_engine::Sweep::from_json(&json).unwrap();
        assert!(vardelay_engine::plan_sweep(&sweep).is_ok());
        assert!(run(vec![
            "sweep".into(),
            "example".into(),
            "--backend".into(),
            "spice".into()
        ])
        .is_err());
    }

    #[test]
    fn sweep_example_strategy_emits_trial_plan_template() {
        for strategy in ["antithetic", "stratified", "sobol", "blockade"] {
            let json = run(vec![
                "sweep".into(),
                "example".into(),
                "--strategy".into(),
                strategy.into(),
            ])
            .unwrap();
            assert!(
                json.contains(&format!("\"strategy\": \"{strategy}\"")),
                "{json}"
            );
            let sweep = vardelay_engine::Sweep::from_json(&json).unwrap();
            assert!(vardelay_engine::plan_sweep(&sweep).is_ok(), "{strategy}");
        }
        // Unknown strategies are rejected with the valid set.
        let err = run(vec![
            "sweep".into(),
            "example".into(),
            "--strategy".into(),
            "latin".into(),
        ])
        .unwrap_err();
        assert!(
            err.to_string()
                .contains("plain|antithetic|stratified|sobol|blockade"),
            "{err}"
        );
        // --strategy picks its own template; --backend conflicts.
        assert!(run(vec![
            "sweep".into(),
            "example".into(),
            "--strategy".into(),
            "sobol".into(),
            "--backend".into(),
            "netlist".into(),
        ])
        .is_err());
    }

    #[test]
    fn optimize_example_high_sigma_is_a_blockade_campaign() {
        let json = run(vec![
            "optimize".into(),
            "example".into(),
            "--high-sigma".into(),
        ])
        .unwrap();
        assert!(json.contains("\"strategy\": \"blockade\""), "{json}");
        assert!(json.contains("\"ci_half_width\": 0.001"), "{json}");
        let campaign = vardelay_engine::OptimizationCampaign::from_json(&json).unwrap();
        assert!(vardelay_engine::plan_campaign(&campaign).is_ok());
        assert_eq!(campaign.runs[0].yield_target, 0.999);
    }

    #[test]
    fn sweep_validate_reports_without_running() {
        let spec = vardelay_engine::Sweep::example_netlist().to_json();
        let out = sweep_validate_cmd(&spec, vec![]).unwrap();
        assert!(out.contains("spec OK"), "{out}");
        assert!(out.contains("netlist"), "{out}");
        assert!(out.contains("analytic"), "{out}");
        assert!(out.contains("blocks"), "{out}");
        // Invalid specs are rejected with the engine's context.
        let mut bad = vardelay_engine::Sweep::example_netlist();
        bad.scenarios[1].trials = 5; // analytic backend with trials
        let err = sweep_validate_cmd(&bad.to_json(), vec![]).unwrap_err();
        assert!(err.to_string().contains("analytic"), "{err}");
        assert!(sweep_validate_cmd("not json", vec![]).is_err());
        assert!(sweep_validate_cmd(&spec, vec!["--frob".into()]).is_err());
        assert!(run(vec!["sweep".into(), "validate".into()]).is_err());
        // Stray arguments after the spec file are still rejected.
        assert!(run(vec![
            "sweep".into(),
            "validate".into(),
            "spec.json".into(),
            "--frob".into()
        ])
        .is_err());
        assert!(run(vec![
            "optimize".into(),
            "validate".into(),
            "spec.json".into(),
            "extra".into()
        ])
        .is_err());
    }

    #[test]
    fn sweep_cmd_runs_a_small_spec() {
        let mut sweep = vardelay_engine::Sweep::example();
        sweep.grid = None;
        sweep.scenarios.truncate(1);
        sweep.scenarios[0].trials = 300;
        let out = sweep_cmd(&sweep.to_json(), vec!["--workers".into(), "2".into()]).unwrap();
        assert!(out.contains("1 scenarios"), "{out}");
        assert!(out.contains("moments 5-stage"), "{out}");
    }

    #[test]
    fn sweep_cmd_validates() {
        assert!(sweep_cmd("not json", vec![]).is_err());
        assert!(run(vec!["sweep".into()]).is_err());
        let spec = vardelay_engine::Sweep::example().to_json();
        assert!(sweep_cmd(&spec, vec!["--workers".into(), "x".into()]).is_err());
        assert!(sweep_cmd(&spec, vec!["--frob".into(), "1".into()]).is_err());
    }

    #[test]
    fn yield_cmd_happy_path() {
        let out = yield_cmd(
            [
                "--stages",
                "198:4,200:5,195:6",
                "--target",
                "210",
                "--rho",
                "0.3",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        )
        .unwrap();
        assert!(out.contains("3 stages"));
        assert!(out.contains("yield at 210 ps"));
    }

    #[test]
    fn yield_cmd_validates() {
        assert!(yield_cmd(vec![]).is_err());
        assert!(yield_cmd(
            ["--stages", "bad", "--target", "210"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        )
        .is_err());
    }

    #[test]
    fn generate_then_analyze_roundtrip() {
        let bench = generate("chain:8").unwrap();
        let out = analyze("chain", &bench, vec![]).unwrap();
        assert!(out.contains("statistical delay"));
        assert!(out.contains("top paths"));
    }

    #[test]
    fn generate_rejects_unknown() {
        assert!(generate("c9999").is_err());
        assert!(generate("chain:0").is_err());
    }

    #[test]
    fn run_routes_and_reports_errors() {
        assert!(run(vec![]).unwrap().contains("USAGE"));
        assert!(run(vec!["frob".into()]).is_err());
        assert!(run(vec!["analyze".into()]).is_err());
    }
}
