//! Command-line interface logic (thin argument parsing, no dependencies).
//!
//! Subcommands:
//!
//! * `analyze <file.bench>` — statistical timing of a `.bench` netlist.
//! * `yield --stages m:s,m:s,... --target T [--rho R]` — pipeline yield
//!   from stage moments (the paper's core model, eq. 4–9).
//! * `generate <c432|c1908|c2670|c3540|chain:N>` — emit a benchmark
//!   netlist in `.bench` format.
//! * `sweep <spec.json>` — run a scenario sweep on the parallel engine;
//!   `sweep example` prints a ready-to-edit spec.
//! * `optimize <spec.json>` — run a yield-aware sizing campaign (the
//!   §4 / Fig. 9 flow) on the same engine; `optimize example` prints a
//!   ready-to-edit campaign, `optimize validate` lints one.
//!
//! Every subcommand rejects unrecognized flags/arguments outright —
//! like the spec files' unknown-key rejection, a typo'd option must
//! fail loudly, never silently change (or skip) part of a run.
//!
//! All functions return the output text so they are unit-testable; `main`
//! only routes arguments and prints.

use std::fmt::Write as _;

use vardelay_circuit::generators::{inverter_chain, iscas};
use vardelay_circuit::{parse_bench, write_bench, CellLibrary, Netlist};
use vardelay_core::{Pipeline, StageDelay};
use vardelay_process::VariationConfig;
use vardelay_ssta::SstaEngine;
use vardelay_stats::CorrelationMatrix;

/// CLI error: message for the user plus a suggestion to run `help`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (run `vardelay help`)", self.0)
    }
}

impl std::error::Error for CliError {}

/// The help text.
pub fn help() -> String {
    "\
vardelay — statistical pipeline delay & yield (DATE 2005 reproduction)

USAGE:
  vardelay analyze <file.bench> [--inter MV] [--rand MV] [--sys MV]
      Statistical timing of a .bench netlist: nominal delay, mean, sigma,
      sigma/mu, and the top critical paths.

  vardelay yield --stages MU:SD,MU:SD,... --target PS [--rho R]
      Pipeline yield from per-stage delay moments (ps), using Clark's
      max approximation (eq. 4-6) and the Gaussian yield model (eq. 9).

  vardelay generate <c432|c1908|c2670|c3540|chain:N>
      Emit a benchmark netlist in .bench format on stdout.

  vardelay sweep <spec.json> [--workers N] [--out results.json]
      Run a scenario sweep (analytic model + Monte-Carlo) on the
      parallel engine. Results are bit-identical for any --workers.
      A summary table goes to stdout; full JSON results go to --out.
      Each scenario picks its simulator with the backend field:
      pipeline (staged-pipeline MC, the default), netlist (gate-level
      MC on the zero-allocation hot path; supports CircuitSpec stages:
      Chain/Alu1/Alu2/Decoder/Random/Iscas), or analytic (closed-form
      SSTA/Clark, no trials).

  vardelay sweep validate <spec.json>
      Lint a spec without running it: expand, validate every scenario,
      and report the scenario count, trial total and block count.

  vardelay sweep example [--backend netlist]
      Print an example sweep spec (JSON) to adapt; --backend netlist
      emits a gate-level template (circuit-spec pipelines, an analytic
      model twin for model-vs-MC deltas).

  vardelay optimize <spec.json> [--workers N] [--out results.json]
      Run an optimization campaign: the paper's global yield-aware
      sizing flow (Fig. 9) over every (pipeline x yield target x
      target-delay policy x goal x variation) run in the spec, on the
      parallel engine. Each run reports the individually-optimized
      baseline, the global flow's result, the analytic yield
      prediction and the MC-verified yield side by side. Results are
      bit-identical for any --workers. The yield_backend field picks
      what measures yield inside the sizing loop: analytic (Clark/SSTA,
      the paper flow) or netlist (gate-level Monte-Carlo).

  vardelay optimize validate <spec.json>
      Lint a campaign spec without running it: expand, validate every
      run, and report per-run footprint (stages, gates, goal, backend,
      yield allocation) plus total verification trials.

  vardelay optimize example
      Print an example campaign spec (JSON) to adapt.

  vardelay help
      This text.
"
    .to_owned()
}

/// Parses `--key value` style options out of an argument list.
fn take_opt(args: &mut Vec<String>, key: &str) -> Result<Option<String>, CliError> {
    if let Some(i) = args.iter().position(|a| a == key) {
        if i + 1 >= args.len() {
            return Err(CliError(format!("{key} requires a value")));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

fn parse_f64(s: &str, what: &str) -> Result<f64, CliError> {
    s.parse::<f64>()
        .map_err(|_| CliError(format!("invalid {what}: '{s}'")))
}

/// `analyze` subcommand over already-loaded text.
pub fn analyze(name: &str, bench_text: &str, mut opts: Vec<String>) -> Result<String, CliError> {
    let inter = take_opt(&mut opts, "--inter")?
        .map(|v| parse_f64(&v, "--inter"))
        .transpose()?
        .unwrap_or(20.0);
    let rand = take_opt(&mut opts, "--rand")?
        .map(|v| parse_f64(&v, "--rand"))
        .transpose()?
        .unwrap_or(35.0);
    let sys = take_opt(&mut opts, "--sys")?
        .map(|v| parse_f64(&v, "--sys"))
        .transpose()?
        .unwrap_or(0.0);
    if !opts.is_empty() {
        return Err(CliError(format!("unrecognized arguments: {opts:?}")));
    }

    let netlist: Netlist =
        parse_bench(name, bench_text).map_err(|e| CliError(format!("parse error: {e}")))?;
    let engine = SstaEngine::new(
        CellLibrary::default(),
        VariationConfig::combined(inter, rand, sys),
        None,
    );
    let stat = engine.stage_delay(&netlist, 0);
    let nominal = vardelay_ssta::nominal_delay(&netlist, engine.library(), engine.output_load());
    let paths = vardelay_ssta::top_k_paths(&engine, &netlist, 0, 5);

    let mut out = String::new();
    let _ = writeln!(out, "{netlist}");
    let _ = writeln!(
        out,
        "variation: sigmaVth inter {inter} mV, random {rand} mV, systematic {sys} mV"
    );
    let _ = writeln!(out, "nominal delay: {nominal:.2} ps");
    let _ = writeln!(
        out,
        "statistical delay: mu {:.2} ps, sigma {:.3} ps (sigma/mu {:.3}%)",
        stat.mean(),
        stat.sd(),
        100.0 * stat.variability()
    );
    let _ = writeln!(out, "top paths (nominal ps | statistical mu/sigma):");
    for (i, p) in paths.iter().enumerate() {
        let _ = writeln!(
            out,
            "  #{}: {:.2} | {:.2} / {:.3}  ({} gates)",
            i + 1,
            p.nominal_ps,
            p.statistical.mean(),
            p.statistical.sd(),
            p.gates.len()
        );
    }
    Ok(out)
}

/// `yield` subcommand.
pub fn yield_cmd(mut opts: Vec<String>) -> Result<String, CliError> {
    let stages_arg = take_opt(&mut opts, "--stages")?
        .ok_or_else(|| CliError("--stages MU:SD,... is required".to_owned()))?;
    let target = parse_f64(
        &take_opt(&mut opts, "--target")?
            .ok_or_else(|| CliError("--target PS is required".to_owned()))?,
        "--target",
    )?;
    let rho = take_opt(&mut opts, "--rho")?
        .map(|v| parse_f64(&v, "--rho"))
        .transpose()?
        .unwrap_or(0.0);
    if !opts.is_empty() {
        return Err(CliError(format!("unrecognized arguments: {opts:?}")));
    }

    let stages: Vec<StageDelay> = stages_arg
        .split(',')
        .map(|pair| {
            let (m, s) = pair
                .split_once(':')
                .ok_or_else(|| CliError(format!("stage '{pair}' is not MU:SD")))?;
            StageDelay::from_moments(parse_f64(m, "stage mean")?, parse_f64(s, "stage sd")?)
                .map_err(|e| CliError(format!("invalid stage '{pair}': {e}")))
        })
        .collect::<Result<_, _>>()?;
    let n = stages.len();
    let corr =
        CorrelationMatrix::uniform(n, rho).map_err(|e| CliError(format!("invalid --rho: {e}")))?;
    let pipe =
        Pipeline::new(stages, corr).map_err(|e| CliError(format!("invalid pipeline: {e}")))?;
    let d = pipe.delay_distribution();

    let mut out = String::new();
    let _ = writeln!(out, "{n} stages, pairwise correlation {rho}");
    let _ = writeln!(
        out,
        "pipeline delay: mu {:.3} ps, sigma {:.3} ps (Jensen bound {:.3} ps)",
        d.mean(),
        d.sd(),
        pipe.jensen_lower_bound()
    );
    let _ = writeln!(
        out,
        "yield at {target} ps: {:.3}% (eq. 9 Gaussian)",
        100.0 * pipe.yield_at(target)
    );
    if rho == 0.0 {
        let _ = writeln!(
            out,
            "                    {:.3}% (eq. 8 exact, independent stages)",
            100.0 * pipe.yield_independent_exact(target)
        );
    }
    Ok(out)
}

/// `generate` subcommand.
pub fn generate(which: &str) -> Result<String, CliError> {
    let netlist = match which {
        "c432" => iscas::c432(),
        "c1908" => iscas::c1908(),
        "c2670" => iscas::c2670(),
        "c3540" => iscas::c3540(),
        other => {
            if let Some(n) = other.strip_prefix("chain:") {
                let len: usize = n
                    .parse()
                    .map_err(|_| CliError(format!("invalid chain length '{n}'")))?;
                if len == 0 {
                    return Err(CliError("chain length must be positive".to_owned()));
                }
                inverter_chain(len, 1.0)
            } else {
                return Err(CliError(format!(
                    "unknown benchmark '{other}' (use c432|c1908|c2670|c3540|chain:N)"
                )));
            }
        }
    };
    Ok(write_bench(&netlist))
}

/// `sweep` subcommand over already-loaded spec text.
///
/// Returns the summary table; when `out` is given the full JSON results
/// are written there (the JSON artifact is bit-identical for any worker
/// count — timing goes to stderr only).
pub fn sweep_cmd(spec_text: &str, mut opts: Vec<String>) -> Result<String, CliError> {
    let workers = take_opt(&mut opts, "--workers")?
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| CliError(format!("invalid --workers: '{v}'")))
        })
        .transpose()?;
    let out_path = take_opt(&mut opts, "--out")?;
    if !opts.is_empty() {
        return Err(CliError(format!("unrecognized arguments: {opts:?}")));
    }

    let sweep = vardelay_engine::Sweep::from_json(spec_text)
        .map_err(|e| CliError(format!("invalid sweep spec: {e}")))?;
    let mut options = vardelay_engine::SweepOptions::default();
    if let Some(w) = workers {
        options = options.with_workers(w);
    }
    let started = std::time::Instant::now();
    let result = vardelay_engine::run_sweep(&sweep, &options)
        .map_err(|e| CliError(format!("sweep failed: {e}")))?;
    eprintln!(
        "sweep '{}': {} scenarios, {} workers, {:.3} s",
        result.name,
        result.scenarios.len(),
        options.workers,
        started.elapsed().as_secs_f64()
    );

    let mut text = format!(
        "sweep '{}' — {} scenarios (seed {})\n\n{}",
        result.name,
        result.scenarios.len(),
        result.seed,
        result.summary_table()
    );
    if let Some(path) = out_path {
        std::fs::write(&path, result.to_json())
            .map_err(|e| CliError(format!("cannot write '{path}': {e}")))?;
        use std::fmt::Write as _;
        let _ = writeln!(text, "\nresults written to {path}");
    }
    Ok(text)
}

/// `sweep validate` subcommand over already-loaded spec text: full
/// validation and cost accounting, zero trials run.
pub fn sweep_validate_cmd(spec_text: &str) -> Result<String, CliError> {
    let sweep = vardelay_engine::Sweep::from_json(spec_text)
        .map_err(|e| CliError(format!("invalid sweep spec: {e}")))?;
    let plan = vardelay_engine::plan_sweep(&sweep)
        .map_err(|e| CliError(format!("invalid sweep spec: {e}")))?;
    Ok(format!("{}\nspec OK\n", plan.render()))
}

/// `sweep example` subcommand: the spec template for a backend.
pub fn sweep_example_cmd(mut opts: Vec<String>) -> Result<String, CliError> {
    let backend = take_opt(&mut opts, "--backend")?;
    if !opts.is_empty() {
        return Err(CliError(format!("unrecognized arguments: {opts:?}")));
    }
    let sweep = match backend.as_deref() {
        None | Some("pipeline") => vardelay_engine::Sweep::example(),
        Some("netlist") => vardelay_engine::Sweep::example_netlist(),
        Some(other) => {
            return Err(CliError(format!(
                "no example for backend '{other}' (use pipeline|netlist)"
            )))
        }
    };
    Ok(sweep.to_json() + "\n")
}

/// `optimize` subcommand over already-loaded campaign spec text.
///
/// Returns the summary table; when `--out` is given the full JSON
/// results are written there (bit-identical for any worker count —
/// timing goes to stderr only).
pub fn optimize_cmd(spec_text: &str, mut opts: Vec<String>) -> Result<String, CliError> {
    let workers = take_opt(&mut opts, "--workers")?
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| CliError(format!("invalid --workers: '{v}'")))
        })
        .transpose()?;
    let out_path = take_opt(&mut opts, "--out")?;
    if !opts.is_empty() {
        return Err(CliError(format!("unrecognized arguments: {opts:?}")));
    }

    let campaign = vardelay_engine::OptimizationCampaign::from_json(spec_text)
        .map_err(|e| CliError(format!("invalid campaign spec: {e}")))?;
    let mut options = vardelay_engine::SweepOptions::default();
    if let Some(w) = workers {
        options = options.with_workers(w);
    }
    let started = std::time::Instant::now();
    let result = vardelay_engine::run_campaign(&campaign, &options)
        .map_err(|e| CliError(format!("campaign failed: {e}")))?;
    eprintln!(
        "campaign '{}': {} runs, {} workers, {:.3} s",
        result.name,
        result.runs.len(),
        options.workers,
        started.elapsed().as_secs_f64()
    );

    let mut text = format!(
        "campaign '{}' — {} runs (seed {})\n\n{}",
        result.name,
        result.runs.len(),
        result.seed,
        result.summary_table()
    );
    if let Some(path) = out_path {
        std::fs::write(&path, result.to_json())
            .map_err(|e| CliError(format!("cannot write '{path}': {e}")))?;
        use std::fmt::Write as _;
        let _ = writeln!(text, "\nresults written to {path}");
    }
    Ok(text)
}

/// `optimize validate` subcommand: full validation and footprint
/// accounting, zero sizing passes and zero trials run.
pub fn optimize_validate_cmd(spec_text: &str) -> Result<String, CliError> {
    let campaign = vardelay_engine::OptimizationCampaign::from_json(spec_text)
        .map_err(|e| CliError(format!("invalid campaign spec: {e}")))?;
    let plan = vardelay_engine::plan_campaign(&campaign)
        .map_err(|e| CliError(format!("invalid campaign spec: {e}")))?;
    Ok(format!("{}\nspec OK\n", plan.render()))
}

/// `optimize example` subcommand: the campaign spec template.
pub fn optimize_example_cmd(opts: Vec<String>) -> Result<String, CliError> {
    no_more_args("optimize example", &opts)?;
    Ok(vardelay_engine::OptimizationCampaign::example().to_json() + "\n")
}

/// Rejects stray arguments after a subcommand that takes none.
fn no_more_args(what: &str, rest: &[String]) -> Result<(), CliError> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(CliError(format!("unrecognized {what} arguments: {rest:?}")))
    }
}

/// Routes a full argument vector (without argv(0)); returns output text.
pub fn run(args: Vec<String>) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(help()),
        Some("analyze") => {
            let file = args
                .get(1)
                .ok_or_else(|| CliError("analyze requires a .bench file".to_owned()))?;
            let text = std::fs::read_to_string(file)
                .map_err(|e| CliError(format!("cannot read '{file}': {e}")))?;
            analyze(file, &text, args[2..].to_vec())
        }
        Some("yield") => yield_cmd(args[1..].to_vec()),
        Some("sweep") => match args.get(1).map(String::as_str) {
            None => Err(CliError(
                "sweep requires a spec file (or `example`/`validate`)".to_owned(),
            )),
            Some("example") => sweep_example_cmd(args[2..].to_vec()),
            Some("validate") => {
                let file = args
                    .get(2)
                    .ok_or_else(|| CliError("sweep validate requires a spec file".to_owned()))?;
                no_more_args("sweep validate", &args[3..])?;
                let text = std::fs::read_to_string(file)
                    .map_err(|e| CliError(format!("cannot read '{file}': {e}")))?;
                sweep_validate_cmd(&text)
            }
            Some(file) => {
                let text = std::fs::read_to_string(file)
                    .map_err(|e| CliError(format!("cannot read '{file}': {e}")))?;
                sweep_cmd(&text, args[2..].to_vec())
            }
        },
        Some("optimize") => match args.get(1).map(String::as_str) {
            None => Err(CliError(
                "optimize requires a spec file (or `example`/`validate`)".to_owned(),
            )),
            Some("example") => optimize_example_cmd(args[2..].to_vec()),
            Some("validate") => {
                let file = args
                    .get(2)
                    .ok_or_else(|| CliError("optimize validate requires a spec file".to_owned()))?;
                no_more_args("optimize validate", &args[3..])?;
                let text = std::fs::read_to_string(file)
                    .map_err(|e| CliError(format!("cannot read '{file}': {e}")))?;
                optimize_validate_cmd(&text)
            }
            Some(file) => {
                let text = std::fs::read_to_string(file)
                    .map_err(|e| CliError(format!("cannot read '{file}': {e}")))?;
                optimize_cmd(&text, args[2..].to_vec())
            }
        },
        Some("generate") => {
            let which = args
                .get(1)
                .ok_or_else(|| CliError("generate requires a benchmark name".to_owned()))?;
            no_more_args("generate", &args[2..])?;
            generate(which)
        }
        Some(other) => Err(CliError(format!("unknown subcommand '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_lists_subcommands() {
        let h = help();
        for cmd in ["analyze", "yield", "generate", "sweep", "optimize"] {
            assert!(h.contains(cmd));
        }
    }

    #[test]
    fn optimize_example_is_a_valid_campaign() {
        let json = run(vec!["optimize".into(), "example".into()]).unwrap();
        let campaign = vardelay_engine::OptimizationCampaign::from_json(&json).unwrap();
        assert!(campaign.expand().len() >= 4);
        assert!(vardelay_engine::plan_campaign(&campaign).is_ok());
    }

    #[test]
    fn optimize_validate_reports_without_running() {
        let spec = vardelay_engine::OptimizationCampaign::example().to_json();
        let out = optimize_validate_cmd(&spec).unwrap();
        assert!(out.contains("spec OK"), "{out}");
        assert!(out.contains("ensure-yield"), "{out}");
        assert!(out.contains("analytic"), "{out}");
        assert!(out.contains("netlist"), "{out}");
        // Invalid specs are rejected with the engine's context.
        let mut bad = vardelay_engine::OptimizationCampaign::example();
        bad.runs[0].rounds = 0;
        let err = optimize_validate_cmd(&bad.to_json()).unwrap_err();
        assert!(err.to_string().contains("rounds"), "{err}");
        assert!(optimize_validate_cmd("not json").is_err());
        assert!(run(vec!["optimize".into(), "validate".into()]).is_err());
        assert!(run(vec!["optimize".into()]).is_err());
    }

    #[test]
    fn optimize_cmd_runs_a_small_campaign() {
        let mut campaign = vardelay_engine::OptimizationCampaign::example();
        campaign.grid = None;
        campaign.runs.truncate(1);
        campaign.runs[0].rounds = 1;
        campaign.runs[0].verify_trials = 256;
        if let vardelay_opt::TargetDelayPolicy::FrontierQuantile { refine, .. } =
            &mut campaign.runs[0].target_delay
        {
            *refine = 1;
        }
        let out = optimize_cmd(&campaign.to_json(), vec!["--workers".into(), "2".into()]).unwrap();
        assert!(out.contains("1 runs"), "{out}");
        assert!(out.contains("chains"), "{out}");
    }

    #[test]
    fn unknown_flags_are_rejected_everywhere() {
        // A typo'd option must fail loudly, never be silently dropped.
        let sweep_spec = vardelay_engine::Sweep::example().to_json();
        assert!(sweep_cmd(&sweep_spec, vec!["--frob".into(), "1".into()]).is_err());
        assert!(run(vec![
            "sweep".into(),
            "example".into(),
            "--frob".into(),
            "x".into()
        ])
        .is_err());
        let campaign_spec = vardelay_engine::OptimizationCampaign::example().to_json();
        assert!(optimize_cmd(&campaign_spec, vec!["--frob".into(), "1".into()]).is_err());
        assert!(optimize_cmd(&campaign_spec, vec!["--workers".into(), "x".into()]).is_err());
        assert!(run(vec!["optimize".into(), "example".into(), "--frob".into()]).is_err());
        // Trailing junk after fixed-shape subcommands errors too.
        assert!(run(vec!["generate".into(), "c432".into(), "--frob".into()]).is_err());
    }

    #[test]
    fn sweep_example_is_a_valid_spec() {
        let json = run(vec!["sweep".into(), "example".into()]).unwrap();
        let sweep = vardelay_engine::Sweep::from_json(&json).unwrap();
        assert!(sweep.expand().len() >= 16);
    }

    #[test]
    fn sweep_example_netlist_emits_gate_level_template() {
        let json = run(vec![
            "sweep".into(),
            "example".into(),
            "--backend".into(),
            "netlist".into(),
        ])
        .unwrap();
        assert!(json.contains("\"backend\": \"netlist\""), "{json}");
        assert!(json.contains("\"backend\": \"analytic\""), "{json}");
        let sweep = vardelay_engine::Sweep::from_json(&json).unwrap();
        assert!(vardelay_engine::plan_sweep(&sweep).is_ok());
        assert!(run(vec![
            "sweep".into(),
            "example".into(),
            "--backend".into(),
            "spice".into()
        ])
        .is_err());
    }

    #[test]
    fn sweep_validate_reports_without_running() {
        let spec = vardelay_engine::Sweep::example_netlist().to_json();
        let out = sweep_validate_cmd(&spec).unwrap();
        assert!(out.contains("spec OK"), "{out}");
        assert!(out.contains("netlist"), "{out}");
        assert!(out.contains("analytic"), "{out}");
        assert!(out.contains("blocks"), "{out}");
        // Invalid specs are rejected with the engine's context.
        let mut bad = vardelay_engine::Sweep::example_netlist();
        bad.scenarios[1].trials = 5; // analytic backend with trials
        let err = sweep_validate_cmd(&bad.to_json()).unwrap_err();
        assert!(err.to_string().contains("analytic"), "{err}");
        assert!(sweep_validate_cmd("not json").is_err());
        assert!(run(vec!["sweep".into(), "validate".into()]).is_err());
        // Stray arguments after the spec file are rejected before the
        // file is even read.
        assert!(run(vec![
            "sweep".into(),
            "validate".into(),
            "spec.json".into(),
            "--frob".into()
        ])
        .is_err());
        assert!(run(vec![
            "optimize".into(),
            "validate".into(),
            "spec.json".into(),
            "extra".into()
        ])
        .is_err());
    }

    #[test]
    fn sweep_cmd_runs_a_small_spec() {
        let mut sweep = vardelay_engine::Sweep::example();
        sweep.grid = None;
        sweep.scenarios.truncate(1);
        sweep.scenarios[0].trials = 300;
        let out = sweep_cmd(&sweep.to_json(), vec!["--workers".into(), "2".into()]).unwrap();
        assert!(out.contains("1 scenarios"), "{out}");
        assert!(out.contains("moments 5-stage"), "{out}");
    }

    #[test]
    fn sweep_cmd_validates() {
        assert!(sweep_cmd("not json", vec![]).is_err());
        assert!(run(vec!["sweep".into()]).is_err());
        let spec = vardelay_engine::Sweep::example().to_json();
        assert!(sweep_cmd(&spec, vec!["--workers".into(), "x".into()]).is_err());
        assert!(sweep_cmd(&spec, vec!["--frob".into(), "1".into()]).is_err());
    }

    #[test]
    fn yield_cmd_happy_path() {
        let out = yield_cmd(
            [
                "--stages",
                "198:4,200:5,195:6",
                "--target",
                "210",
                "--rho",
                "0.3",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        )
        .unwrap();
        assert!(out.contains("3 stages"));
        assert!(out.contains("yield at 210 ps"));
    }

    #[test]
    fn yield_cmd_validates() {
        assert!(yield_cmd(vec![]).is_err());
        assert!(yield_cmd(
            ["--stages", "bad", "--target", "210"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        )
        .is_err());
    }

    #[test]
    fn generate_then_analyze_roundtrip() {
        let bench = generate("chain:8").unwrap();
        let out = analyze("chain", &bench, vec![]).unwrap();
        assert!(out.contains("statistical delay"));
        assert!(out.contains("top paths"));
    }

    #[test]
    fn generate_rejects_unknown() {
        assert!(generate("c9999").is_err());
        assert!(generate("chain:0").is_err());
    }

    #[test]
    fn run_routes_and_reports_errors() {
        assert!(run(vec![]).unwrap().contains("USAGE"));
        assert!(run(vec!["frob".into()]).is_err());
        assert!(run(vec!["analyze".into()]).is_err());
    }
}
