//! `vardelay` command-line tool — see `vardelay help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match vardelay::cli::run(args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
