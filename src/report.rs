//! `vardelay report` — phase breakdown of a `--trace`/`--metrics` file.
//!
//! Both observability artifacts carry the same story at different
//! granularity: the Chrome trace file (`--trace`) holds every span, the
//! metrics file (`--metrics`) holds the pre-aggregated per-phase sums.
//! This module renders either as one fixed-width table — wall time per
//! phase (count, total, mean, share of wall), trial throughput, worker
//! utilization, units executed vs resumed — so a campaign's time budget
//! can be read off a file instead of hand-timed.
//!
//! The file kind is sniffed from its top-level keys: `traceEvents`
//! (Chrome trace-event format) vs `phases` (the metrics schema of
//! [`vardelay_obs::metrics_json`]).

use std::collections::BTreeMap;

use serde::Value;

use crate::cli::CliError;

/// One phase row assembled from either file kind.
#[derive(Debug, Default, Clone, Copy)]
struct Phase {
    count: u64,
    total_ms: f64,
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::Number(n) => Some(match *n {
            serde::Number::U64(u) => u as f64,
            serde::Number::I64(i) => i as f64,
            serde::Number::F64(f) => f,
        }),
        _ => None,
    }
}

fn string(v: &Value) -> Option<&str> {
    match v {
        Value::String(s) => Some(s),
        _ => None,
    }
}

fn get_num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(num)
}

/// Renders the phase table shared by both inputs.
///
/// `wall_ms` is the run's wall clock; the share column is each phase's
/// total against it. Phases nest (`opt/flow` contains `opt/size_stage`
/// contains `opt/yield_eval`), so shares are a profile, not a partition
/// — they legitimately sum past 100%.
fn render(
    header: String,
    wall_ms: f64,
    phases: &BTreeMap<String, Phase>,
    counters: &BTreeMap<String, f64>,
    extra: &[String],
) -> String {
    let mut out = header;
    out.push('\n');
    let name_w = phases
        .keys()
        .map(|k| k.len())
        .chain(["phase".len()])
        .max()
        .unwrap_or(5);
    out.push_str(&format!(
        "\n{:<name_w$}  {:>9}  {:>12}  {:>11}  {:>6}\n",
        "phase", "count", "total ms", "mean us", "wall%"
    ));
    let mut rows: Vec<(&String, &Phase)> = phases.iter().collect();
    rows.sort_by(|a, b| {
        b.1.total_ms
            .partial_cmp(&a.1.total_ms)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for (name, p) in rows {
        let mean_us = if p.count > 0 {
            1e3 * p.total_ms / p.count as f64
        } else {
            0.0
        };
        let share = if wall_ms > 0.0 {
            100.0 * p.total_ms / wall_ms
        } else {
            0.0
        };
        out.push_str(&format!(
            "{name:<name_w$}  {:>9}  {:>12.3}  {:>11.2}  {:>5.1}%\n",
            p.count, p.total_ms, mean_us, share
        ));
    }
    out.push_str(&format!(
        "\nwall time: {:.3} ms (phases nest, so shares can exceed 100%)\n",
        wall_ms
    ));
    for (name, v) in counters {
        out.push_str(&format!("counter {name}: {v}\n"));
        // Trial counters are per kernel version: "trials" is the v1
        // kernel, "trials_v2" the batch kernel. Both get a wall-rate
        // line so per-kernel throughput is visible side by side.
        if (name == "trials" || name == "trials_v2") && wall_ms > 0.0 {
            out.push_str(&format!(
                "counter {name} rate: {:.0}/s of wall\n",
                *v / (wall_ms / 1e3)
            ));
        }
    }
    for line in extra {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Builds the table from a metrics file (`--metrics` schema).
fn from_metrics(v: &Value) -> Result<String, CliError> {
    let err = |what: &str| CliError(format!("metrics file: {what}"));
    let kind = v.get("kind").and_then(string).unwrap_or("run");
    let name = v.get("name").and_then(string).unwrap_or("?");
    let workers = get_num(v, "workers").unwrap_or(0.0);
    let wall_ms = get_num(v, "wall_ms").ok_or_else(|| err("missing wall_ms"))?;
    let mut phases = BTreeMap::new();
    if let Value::Object(fields) = v.field("phases").map_err(|e| err(&e.to_string()))? {
        for (pname, pv) in fields {
            phases.insert(
                pname.clone(),
                Phase {
                    count: get_num(pv, "count").unwrap_or(0.0) as u64,
                    total_ms: get_num(pv, "total_ms").unwrap_or(0.0),
                },
            );
        }
    }
    let mut counters = BTreeMap::new();
    if let Some(Value::Object(fields)) = v.get("counters") {
        for (cname, cv) in fields {
            if let Some(n) = num(cv) {
                counters.insert(cname.clone(), n);
            }
        }
    }
    let mut extra = Vec::new();
    if let Some(units) = v.get("units") {
        let cached = get_num(units, "cached").unwrap_or(0.0);
        extra.push(format!(
            "units: {} total, {} executed, {} resumed from journal{}{}",
            get_num(units, "total").unwrap_or(0.0),
            get_num(units, "executed").unwrap_or(0.0),
            get_num(units, "resumed").unwrap_or(0.0),
            if cached > 0.0 {
                format!(", {cached} from cache")
            } else {
                String::new()
            },
            if units.get("torn_tail_normalized") == Some(&Value::Bool(true)) {
                " (torn tail normalized)"
            } else {
                ""
            }
        ));
    }
    if let Some(cache) = v.get("cache") {
        let hits = get_num(cache, "hits").unwrap_or(0.0);
        let misses = get_num(cache, "misses").unwrap_or(0.0);
        // Cache-less runs carry an all-zero section; say nothing then.
        if hits + misses > 0.0 {
            extra.push(format!(
                "cache: {hits} hits, {misses} misses ({:.1}% hit rate), {} result bytes served from cache",
                100.0 * get_num(cache, "hit_rate").unwrap_or(0.0),
                get_num(cache, "bytes_saved").unwrap_or(0.0),
            ));
        }
    }
    if let Some(rate) = get_num(v, "trials_per_sec") {
        extra.push(format!("trials/s (recorded): {rate:.0}"));
    }
    if let Some(by_kernel) = v.get("trials_by_kernel") {
        let v1 = get_num(by_kernel, "v1").unwrap_or(0.0);
        let v2 = get_num(by_kernel, "v2").unwrap_or(0.0);
        if v1 > 0.0 || v2 > 0.0 {
            extra.push(format!("trials by kernel: v1 {v1:.0}, v2 {v2:.0}"));
        }
    }
    if let Some(Value::Object(fields)) = v.get("trials_by_strategy") {
        // Only worth a line when some plan other than plain actually ran.
        let shaped: f64 = fields
            .iter()
            .filter(|(name, _)| name != "plain")
            .filter_map(|(_, n)| num(n))
            .sum();
        if shaped > 0.0 {
            let parts: Vec<String> = fields
                .iter()
                .filter_map(|(name, n)| num(n).map(|n| (name, n)))
                .filter(|&(_, n)| n > 0.0)
                .map(|(name, n)| format!("{name} {n:.0}"))
                .collect();
            extra.push(format!("trials by strategy: {}", parts.join(", ")));
        }
    }
    if let Some(ess) = get_num(v, "effective_samples") {
        // Present only for weighted (blockade) runs: raw trial count vs
        // the Kish effective sample size their weights amount to.
        extra.push(format!("effective sample size (weighted runs): {ess:.0}"));
    }
    if let Some(Value::Array(ws)) = v.get("worker_util") {
        for w in ws {
            extra.push(format!(
                "worker tid {}: busy {:.3} ms of {:.3} ms ({:.1}%)",
                get_num(w, "tid").unwrap_or(0.0),
                get_num(w, "busy_ms").unwrap_or(0.0),
                get_num(w, "lifetime_ms").unwrap_or(0.0),
                100.0 * get_num(w, "utilization").unwrap_or(0.0),
            ));
        }
    }
    let header = format!("{kind} '{name}' — metrics ({workers} workers)");
    Ok(render(header, wall_ms, &phases, &counters, &extra))
}

/// Builds the table from a Chrome trace file (`--trace` schema):
/// aggregates the complete (`"X"`) events by `cat/name`, takes the last
/// cumulative value of each `"C"` counter track, and measures wall time
/// as the span of all event timestamps.
fn from_trace(v: &Value) -> Result<String, CliError> {
    let err = |what: &str| CliError(format!("trace file: {what}"));
    let Value::Array(events) = v.field("traceEvents").map_err(|e| err(&e.to_string()))? else {
        return Err(err("traceEvents is not an array"));
    };
    let mut phases: BTreeMap<String, Phase> = BTreeMap::new();
    let mut counters: BTreeMap<String, f64> = BTreeMap::new();
    let mut t_min = f64::INFINITY;
    let mut t_max = f64::NEG_INFINITY;
    let mut process_name = None;
    for e in events {
        let ph = e.get("ph").and_then(string).unwrap_or("");
        match ph {
            "X" => {
                let cat = e.get("cat").and_then(string).unwrap_or("?");
                let name = e.get("name").and_then(string).unwrap_or("?");
                let ts = get_num(e, "ts").ok_or_else(|| err("X event without ts"))?;
                let dur = get_num(e, "dur").ok_or_else(|| err("X event without dur"))?;
                let p = phases.entry(format!("{cat}/{name}")).or_default();
                p.count += 1;
                p.total_ms += dur / 1e3;
                t_min = t_min.min(ts);
                t_max = t_max.max(ts + dur);
            }
            "C" => {
                let name = e.get("name").and_then(string).unwrap_or("?");
                // Counter tracks are cumulative; the last sample is the
                // total. Events are emitted in time order.
                if let Some(val) = e.get("args").and_then(|a| get_num(a, "value")) {
                    counters.insert(name.to_owned(), val);
                }
            }
            "i" => {
                if let Some(ts) = get_num(e, "ts") {
                    t_min = t_min.min(ts);
                    t_max = t_max.max(ts);
                }
            }
            "M" if e.get("name").and_then(string) == Some("process_name") => {
                process_name = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(string)
                    .map(str::to_owned);
            }
            _ => {}
        }
    }
    let wall_ms = if t_max > t_min {
        (t_max - t_min) / 1e3
    } else {
        0.0
    };
    let header = format!(
        "{} — trace ({} spans)",
        process_name.as_deref().unwrap_or("trace"),
        phases.values().map(|p| p.count).sum::<u64>()
    );
    Ok(render(header, wall_ms, &phases, &counters, &[]))
}

/// `vardelay report <file>`: sniffs the file kind and prints the table.
///
/// # Errors
///
/// Returns a [`CliError`] when the file is not valid JSON or matches
/// neither the trace nor the metrics schema.
pub fn report_cmd(path: &str, text: &str) -> Result<String, CliError> {
    let v: Value = serde_json::from_str(text)
        .map_err(|e| CliError(format!("'{path}' is not valid JSON: {e}")))?;
    if v.get("traceEvents").is_some() {
        from_trace(&v)
    } else if v.get("phases").is_some() {
        from_metrics(&v)
    } else {
        Err(CliError(format!(
            "'{path}' is neither a trace (traceEvents) nor a metrics (phases) file"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_report_renders_phases_and_units() {
        let text = r#"{
            "kind": "campaign", "name": "t", "workers": 2, "wall_ms": 100.0,
            "units": {"total": 6, "executed": 2, "resumed": 1, "cached": 3, "torn_tail_normalized": true},
            "cache": {"hits": 3, "misses": 2, "hit_rate": 0.6, "bytes_saved": 420},
            "steps": 2, "trials": 4000,
            "trials_by_kernel": {"v1": 1000, "v2": 3000},
            "trials_by_strategy": {"plain": 3000, "antithetic": 0, "stratified": 0, "sobol": 0, "blockade": 1000},
            "effective_samples": 380,
            "trials_per_sec": 40000.0,
            "phases": {
                "mc/verify": {"count": 4, "total_ms": 60.0, "mean_us": 15000.0, "value_sum": 4000.0},
                "opt/size_stage": {"count": 9, "total_ms": 30.0, "mean_us": 3333.3, "value_sum": 90.0}
            },
            "counters": {"trials": 1000, "trials_v2": 3000},
            "worker_util": [{"tid": 1, "lifetime_ms": 100.0, "busy_ms": 90.0, "utilization": 0.9}],
            "events_dropped": 0
        }"#;
        let out = report_cmd("m.json", text).expect("valid metrics");
        assert!(out.contains("campaign 't'"), "{out}");
        assert!(out.contains("mc/verify"), "{out}");
        assert!(out.contains("60.000"), "{out}");
        assert!(
            out.contains("6 total, 2 executed, 1 resumed from journal, 3 from cache"),
            "{out}"
        );
        assert!(out.contains("torn tail normalized"), "{out}");
        assert!(
            out.contains("cache: 3 hits, 2 misses (60.0% hit rate), 420 result bytes"),
            "{out}"
        );
        assert!(out.contains("trials by kernel: v1 1000, v2 3000"), "{out}");
        assert!(
            out.contains("trials by strategy: plain 3000, blockade 1000"),
            "{out}"
        );
        assert!(
            out.contains("effective sample size (weighted runs): 380"),
            "{out}"
        );
        assert!(
            out.contains("counter trials_v2 rate: 30000/s of wall"),
            "{out}"
        );
        assert!(out.contains("worker tid 1"), "{out}");
        // mc/verify (60 ms) sorts above opt/size_stage (30 ms).
        let verify_at = out.find("mc/verify").expect("row");
        let size_at = out.find("opt/size_stage").expect("row");
        assert!(verify_at < size_at, "{out}");
    }

    #[test]
    fn trace_report_aggregates_x_events() {
        let text = r#"{"traceEvents": [
            {"name":"process_name","ph":"M","pid":1,"args":{"name":"vardelay sweep 's'"}},
            {"name":"block","cat":"mc","ph":"X","ts":0.0,"dur":1000.0,"pid":1,"tid":1},
            {"name":"block","cat":"mc","ph":"X","ts":1000.0,"dur":500.0,"pid":1,"tid":1},
            {"name":"trials","ph":"C","ts":1000.0,"pid":1,"args":{"value":256}},
            {"name":"trials","ph":"C","ts":1500.0,"pid":1,"args":{"value":512}}
        ]}"#;
        let out = report_cmd("t.json", text).expect("valid trace");
        assert!(out.contains("vardelay sweep 's'"), "{out}");
        assert!(out.contains("mc/block"), "{out}");
        // 2 spans, 1.5 ms total, last cumulative counter value 512.
        assert!(out.contains("1.500"), "{out}");
        assert!(out.contains("counter trials: 512"), "{out}");
    }

    #[test]
    fn unknown_schema_is_rejected() {
        assert!(report_cmd("x.json", "{}").is_err());
        assert!(report_cmd("x.json", "not json").is_err());
    }
}
